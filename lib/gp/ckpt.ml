(* GP checkpoint files: the tree-genome twin of lib/resilience's GA
   checkpoints.  Same discipline — append-only JSONL, one self-contained
   snapshot per generation, "%.17g" floats, RNG state as a decimal string
   (JSON numbers are doubles and would round an int64), loader walks back to
   the last line that parses.  The only representational difference: genomes
   are canonical tree texts ([Tree.to_text]), parsed back on load, so a
   checkpoint is human-inspectable with nothing but `jq`. *)

module Json = Inltune_obs.Json
module Metric = Inltune_obs.Metric
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event
module E = Inltune_ga.Evolve
module Features = Inltune_policy.Features

let version = 1

type state = {
  gen : int;                      (* last completed generation *)
  rng : int64;                    (* raw RNG state after this generation *)
  pop : Tree.t array;
  best : Tree.t option;
  best_fitness : float;
  cache : (string * float) list;  (* tree digest -> fitness, sorted by key *)
  quarantine : string list;       (* tree digests, sorted *)
  history : E.progress list;      (* oldest first *)
  evaluations : int;
  cache_hits : int;
  failures : int;
  retries : int;
  pop_size : int;                 (* echo of the run's params, for validation *)
  seed : int;
}

(* --- writing ------------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape_into buf s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else add_str buf (if f > 0.0 then "inf" else if f < 0.0 then "-inf" else "nan")

let to_line s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"v\":%d,\"gen\":%d,\"rng\":" version s.gen);
  add_str buf (Int64.to_string s.rng);
  Buffer.add_string buf ",\"pop_size\":";
  Buffer.add_string buf (string_of_int s.pop_size);
  Buffer.add_string buf ",\"seed\":";
  Buffer.add_string buf (string_of_int s.seed);
  Buffer.add_string buf ",\"pop\":[";
  Array.iteri
    (fun i g ->
      if i > 0 then Buffer.add_char buf ',';
      add_str buf (Tree.to_text g))
    s.pop;
  Buffer.add_string buf "],\"best\":";
  add_str buf (match s.best with Some t -> Tree.to_text t | None -> "");
  Buffer.add_string buf ",\"best_fitness\":";
  add_float buf s.best_fitness;
  Buffer.add_string buf ",\"cache\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_str buf k;
      Buffer.add_char buf ':';
      add_float buf v)
    s.cache;
  Buffer.add_string buf "},\"quarantine\":[";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_char buf ',';
      add_str buf k)
    s.quarantine;
  Buffer.add_string buf "],\"history\":[";
  List.iteri
    (fun i (e : E.progress) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"gen\":%d,\"best\":" e.generation);
      add_float buf e.best_fitness;
      Buffer.add_string buf ",\"mean\":";
      add_float buf e.mean_fitness;
      Buffer.add_string buf (Printf.sprintf ",\"evals\":%d}" e.evaluations))
    s.history;
  Buffer.add_string buf
    (Printf.sprintf "],\"evaluations\":%d,\"cache_hits\":%d,\"failures\":%d,\"retries\":%d}"
       s.evaluations s.cache_hits s.failures s.retries);
  Buffer.contents buf

let write ~path s =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_line s);
      output_char oc '\n');
  Metric.incr (Metric.counter "ckpt.writes");
  if Trace.enabled () then
    Trace.emit "ckpt.write"
      ~fields:
        [ ("kind", Event.Str "gp"); ("gen", Event.Int s.gen);
          ("cache", Event.Int (List.length s.cache)) ]

(* --- reading ------------------------------------------------------------- *)

let field name j = Json.member name j

let get_int name j =
  match Option.bind (field name j) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer %S" name)

let get_float name j =
  match field name j with
  | Some (Json.Num f) -> Ok f
  | Some (Json.Str s) -> (
    match float_of_string_opt s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad float string %S in %S" s name))
  | _ -> Error (Printf.sprintf "missing or non-number %S" name)

let get_str name j =
  match Option.bind (field name j) Json.to_string with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string %S" name)

let ( let* ) = Result.bind

let parse_tree what s =
  match Tree.of_text ~dim:Features.dim s with
  | Ok t -> Ok t
  | Error m -> Error (Printf.sprintf "bad tree in %S: %s" what m)

let of_json j =
  let* v = get_int "v" j in
  if v <> version then Error (Printf.sprintf "unsupported checkpoint version %d" v)
  else
    let* gen = get_int "gen" j in
    let* rng_s = get_str "rng" j in
    let* rng =
      match Int64.of_string_opt rng_s with
      | Some r -> Ok r
      | None -> Error (Printf.sprintf "bad rng state %S" rng_s)
    in
    let* pop_size = get_int "pop_size" j in
    let* seed = get_int "seed" j in
    let* pop =
      match field "pop" j with
      | Some (Json.List gs) ->
        let rec go acc = function
          | [] -> Ok (Array.of_list (List.rev acc))
          | Json.Str s :: rest ->
            let* t = parse_tree "pop" s in
            go (t :: acc) rest
          | _ -> Error "non-string individual in \"pop\""
        in
        go [] gs
      | _ -> Error "missing or non-array \"pop\""
    in
    let* best_s = get_str "best" j in
    let* best =
      if best_s = "" then Ok None
      else
        let* t = parse_tree "best" best_s in
        Ok (Some t)
    in
    let* best_fitness = get_float "best_fitness" j in
    let* cache =
      match field "cache" j with
      | Some (Json.Obj kvs) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.Num f) :: rest -> go ((k, f) :: acc) rest
          | (k, Json.Str s) :: rest -> (
            match float_of_string_opt s with
            | Some f -> go ((k, f) :: acc) rest
            | None -> Error (Printf.sprintf "bad cached fitness for %S" k))
          | (k, _) :: _ -> Error (Printf.sprintf "non-number cache entry %S" k)
        in
        go [] kvs
      | _ -> Error "missing or non-object \"cache\""
    in
    let* quarantine =
      match field "quarantine" j with
      | Some (Json.List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Str s :: rest -> go (s :: acc) rest
          | _ -> Error "non-string quarantine key"
        in
        go [] items
      | _ -> Error "missing or non-array \"quarantine\""
    in
    let* history =
      match field "history" j with
      | Some (Json.List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | it :: rest ->
            let* generation = get_int "gen" it in
            let* best_fitness = get_float "best" it in
            let* mean_fitness = get_float "mean" it in
            let* evaluations = get_int "evals" it in
            go ({ E.generation; best_fitness; mean_fitness; evaluations } :: acc) rest
        in
        go [] items
      | _ -> Error "missing or non-array \"history\""
    in
    let* evaluations = get_int "evaluations" j in
    let* cache_hits = get_int "cache_hits" j in
    let* failures = get_int "failures" j in
    let* retries = get_int "retries" j in
    Ok
      {
        gen; rng; pop; best; best_fitness; cache; quarantine; history;
        evaluations; cache_hits; failures; retries; pop_size; seed;
      }

let of_line line =
  match Json.parse line with
  | Error e -> Error e
  | Ok j -> of_json j

let load ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let rec last_valid = function
      | [] -> Error (Printf.sprintf "%s: no complete checkpoint record" path)
      | line :: rest ->
        if String.trim line = "" then last_valid rest
        else ( match of_line line with Ok s -> Ok s | Error _ -> last_valid rest)
    in
    last_valid !lines
