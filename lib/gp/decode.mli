(** Tree genome → {!Inltune_opt.Policy.t}: how evolved predicates reach the
    unchanged inliner, pipeline, and VM.

    Decoding is static — the feature context carries no live profile — so
    decisions are a pure function of the program and the site record.  That
    keeps runs reproducible across scenarios and lets the fitness cache key
    Opt measurements by the exact decision walk
    ({!Inltune_core.Fitcache.policy_signature} with [~static:true]), under
    which structurally different trees making identical decisions share one
    simulation. *)

module Features = Inltune_policy.Features
module Policy = Inltune_opt.Policy

(** Pure site predicate as a policy; verdicts carry rules ["gp_accept"] /
    ["gp_reject"] under family name ["gp"]. *)
val policy : ctx:Features.ctx -> Tree.t -> Policy.t

(** Profile-ignoring policy factory for [Machine.config]. *)
val factory : ctx:Features.ctx -> Tree.t -> Inltune_vm.Profile.t -> Policy.t

(** Fraction of flip-oracle examples ({!Inltune_policy.Dataset.to_training})
    the tree labels correctly; [1.0] on empty data.  The evolver's
    pre-filter surrogate. *)
val agreement : (float array * bool) array -> Tree.t -> float
