(* Genetic-programming policy evolution: the tree-genome instantiation of
   lib/ga's representation-generic engine.  Where `tune` searches the five
   Fig. 3/4 parameters, this searches the space of decision rules — and
   everything else (sandboxed fitness with quarantine, per-generation
   checkpoints with bit-identical resume, the flat genome × benchmark pool
   grid, the decision-signature fitness cache) is the same machinery, reused
   through [Evolve.run_repr].

   The one GP-specific evaluation trick: when a flip-oracle dataset is
   supplied, agreement with its labels is a cheap surrogate fitness, and any
   fresh tree whose agreement trails the current elite's by more than
   [prefilter_margin] is assigned a pessimistic surrogate instead of being
   simulated at all.  Surrogates enter the memo cache and hence the
   checkpoint, so resume replays them bit-identically. *)

module E = Inltune_ga.Evolve
module W = Inltune_workloads
module Metric = Inltune_obs.Metric
module Objective = Inltune_core.Objective

type params = {
  pop_size : int;
  generations : int;
  crossover_prob : float;
  mutation_prob : float;    (* per individual (tree), not per gene *)
  tournament : int;
  elites : int;
  seed : int;
  domains : int option;
  parsimony : float;        (* fitness += parsimony * tree size *)
  prefilter_margin : float; (* skip simulation when agreement trails the
                               elite's by more than this *)
  iterations : int;         (* VM iterations per measurement *)
}

let default_params =
  {
    pop_size = 16;
    generations = 10;
    crossover_prob = 0.9;
    mutation_prob = 0.35;
    tournament = 2;
    elites = 2;
    seed = 42;
    domains = None;
    parsimony = 1e-4;
    prefilter_margin = 0.05;
    iterations = 3;
  }

type result = {
  best : Tree.t;
  best_fitness : float;
  history : E.progress list;      (* oldest first *)
  evaluations : int;
  cache_hits : int;
  failures : int;
  quarantined : int;
  stopped : string option;
  prefilter_skips : int;          (* this process only — not checkpointed *)
  prefilter_candidates : int;
}

let default_guard = { E.default_guard with classify = Objective.transient_failure }

let engine_params (p : params) =
  {
    E.pop_size = p.pop_size;
    generations = p.generations;
    crossover_prob = p.crossover_prob;
    mutation_prob = p.mutation_prob;
    tournament = p.tournament;
    elites = p.elites;
    seed = p.seed;
    domains = p.domains;
  }

let repr (p : params) =
  {
    E.r_key = Tree.digest;
    r_random = Genetic.random;
    r_crossover = Genetic.crossover;
    r_mutate = Genetic.mutate ~prob:p.mutation_prob;
    r_copy = Fun.id;
  }

let snapshot_of_state (st : Ckpt.state) =
  {
    E.s_gen = st.gen;
    s_rng = st.rng;
    s_pop = st.pop;
    s_best = st.best;
    s_best_fitness = st.best_fitness;
    s_cache = st.cache;
    s_quarantine = st.quarantine;
    s_history = st.history;
    s_evaluations = st.evaluations;
    s_cache_hits = st.cache_hits;
    s_failures = st.failures;
    s_retries = st.retries;
  }

let state_of_snapshot (p : params) (s : Tree.t E.snapshot) =
  {
    Ckpt.gen = s.E.s_gen;
    rng = s.s_rng;
    pop = s.s_pop;
    best = s.s_best;
    best_fitness = s.s_best_fitness;
    cache = s.s_cache;
    quarantine = s.s_quarantine;
    history = s.s_history;
    evaluations = s.s_evaluations;
    cache_hits = s.s_cache_hits;
    failures = s.s_failures;
    retries = s.s_retries;
    pop_size = p.pop_size;
    seed = p.seed;
  }

let run ?on_generation ?on_stats ?(guard = default_guard) ?checkpoint ?resume ?dataset
    ~suite ~scenario ~platform ~goal ~params () =
  let skips = ref 0 in
  let candidates = ref 0 in
  let c_skips = Metric.counter "gp.prefilter_skips" in
  let c_pass = Metric.counter "gp.prefilter_pass" in
  let prefilter =
    match dataset with
    | None -> None
    | Some training when Array.length training = 0 -> None
    | Some training ->
      Some
        (fun ~best tree ->
          match best with
          | None -> None (* nothing to beat yet: simulate *)
          | Some (elite, elite_fit) ->
            incr candidates;
            let a = Decode.agreement training tree in
            let ea = Decode.agreement training elite in
            if a < ea -. params.prefilter_margin then begin
              incr skips;
              Metric.incr c_skips;
              (* Pessimistic surrogate, strictly worse than any real
                 geomean-vs-default fitness the elite could hold and ordered
                 by disagreement so the cache stays informative. *)
              Some (Float.max elite_fit 1.0 +. (1.0 -. a))
            end
            else begin
              Metric.incr c_pass;
              None
            end)
  in
  let save =
    Option.map
      (fun path s -> Ckpt.write ~path (state_of_snapshot params s))
      checkpoint
  in
  let resume =
    Option.map
      (fun path () ->
        match Ckpt.load ~path with
        | Error m -> Error m
        | Ok st ->
          if st.Ckpt.pop_size <> params.pop_size || st.Ckpt.seed <> params.seed then
            Error
              (Printf.sprintf
                 "checkpoint was written with pop_size %d seed %d, params say pop_size %d seed %d"
                 st.Ckpt.pop_size st.Ckpt.seed params.pop_size params.seed)
          else Ok (snapshot_of_state st))
      resume
  in
  let grid =
    Fitness.grid ~iterations:params.iterations ~suite ~scenario ~platform ~goal
      ~parsimony:params.parsimony ()
  in
  let fitness =
    Fitness.fitness ~iterations:params.iterations ~suite ~scenario ~platform ~goal
      ~parsimony:params.parsimony ()
  in
  let r =
    E.run_repr ?on_generation ?on_stats ~guard ?save ?resume ~grid ?prefilter
      ~best_view:Tree.to_text ~label:"gp" ~repr:(repr params) ~params:(engine_params params)
      ~fitness ()
  in
  {
    best = Option.value ~default:Tree.False r.E.s_best_genome;
    best_fitness = r.s_fitness;
    history = r.s_progress;
    evaluations = r.s_evals;
    cache_hits = r.s_hits;
    failures = r.s_failed;
    quarantined = r.s_quarantined;
    stopped = r.s_stopped;
    prefilter_skips = !skips;
    prefilter_candidates = !candidates;
  }
