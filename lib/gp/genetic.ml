(* Genetic operators over expression trees: ramped half-and-half
   initialization, subtree crossover, and three-way point mutation.  All
   randomness flows through the explicit Rng value and every operator
   consumes it in a fixed order, so populations are a pure function of the
   seed — the property checkpoint/resume bit-identity rests on.

   Offspring are always [Tree.clamp]ed; when a child would exceed
   [Tree.max_size] the operator returns the (already canonical) parent
   instead, the same fallback discipline the GA uses for invalid genomes. *)

module Rng = Inltune_support.Rng
module Features = Inltune_policy.Features
open Tree

(* Random constants come from Table 1's ranges — each draw picks a row of
   the paper's parameter table uniformly, then an integer in its range, so
   initial thresholds are the magnitudes the search space is actually
   about (1..50 sizes up to 1..4000 caps). *)
let table1_ranges =
  Array.of_list
    (List.map (fun r -> (r.Inltune_core.Params.lo, r.Inltune_core.Params.hi)) Inltune_core.Params.table1)

let random_const rng =
  let lo, hi = table1_ranges.(Rng.int rng (Array.length table1_ranges)) in
  Float.of_int (Rng.range rng lo hi)

let random_leaf_num rng =
  if Rng.bool rng then Feat (Rng.int rng Features.dim) else Const (random_const rng)

let nops = [| Add; Sub; Mul; Div; Min; Max |]

(* [full] forces every branch to the depth budget (the "full" half of ramped
   half-and-half); grow mode may cut to a leaf early. *)
let rec random_num ~full rng budget =
  if budget <= 1 || ((not full) && Rng.chance rng 0.35) then random_leaf_num rng
  else begin
    let op = nops.(Rng.int rng (Array.length nops)) in
    let a = random_num ~full rng (budget - 1) in
    let b = random_num ~full rng (budget - 1) in
    Arith (op, a, b)
  end

let random_cmp rng = if Rng.bool rng then Le else Gt

let rec random_bool ~full rng budget =
  if budget <= 1 then if Rng.bool rng then True else False
  else if budget = 2 then begin
    let op = random_cmp rng in
    let a = random_leaf_num rng in
    let b = random_leaf_num rng in
    Cmp (op, a, b)
  end
  else begin
    match Rng.int rng 4 with
    | 0 ->
      let op = random_cmp rng in
      let a = random_num ~full rng (budget - 1) in
      let b = random_num ~full rng (budget - 1) in
      Cmp (op, a, b)
    | 1 ->
      let a = random_bool ~full rng (budget - 1) in
      let b = random_bool ~full rng (budget - 1) in
      And (a, b)
    | 2 ->
      let a = random_bool ~full rng (budget - 1) in
      let b = random_bool ~full rng (budget - 1) in
      Or (a, b)
    | _ -> Not (random_bool ~full rng (budget - 1))
  end

let min_init_depth = 3
let max_init_depth = 6

let random rng =
  let d = Rng.range rng min_init_depth max_init_depth in
  let full = Rng.bool rng in
  Tree.clamp (random_bool ~full rng d)

(* --- positional access --------------------------------------------------- *)
(* Boolean nodes are numbered in preorder (comparisons count as one node —
   their numeric operands are not boolean positions).  Constants and
   comparisons get their own preorder numberings for point mutation. *)

let rec count_bool = function
  | True | False | Cmp _ -> 1
  | And (a, b) | Or (a, b) -> 1 + count_bool a + count_bool b
  | Not a -> 1 + count_bool a

let nth_bool t i =
  let seen = ref (-1) in
  let exception Found of Tree.t in
  let rec go t =
    incr seen;
    if !seen = i then raise (Found t);
    match t with
    | True | False | Cmp _ -> ()
    | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Not a -> go a
  in
  match go t with
  | () -> t (* out of range: the root, a total fallback *)
  | exception Found s -> s

let replace_bool t i sub =
  let seen = ref (-1) in
  let rec go t =
    incr seen;
    if !seen = i then sub
    else
      match t with
      | True | False | Cmp _ -> t
      | And (a, b) ->
        (* Explicit sequencing: constructor arguments evaluate right-to-left
           in OCaml, which would visit the right child first and renumber
           every position. *)
        let a' = go a in
        let b' = go b in
        And (a', b')
      | Or (a, b) ->
        let a' = go a in
        let b' = go b in
        Or (a', b')
      | Not a -> Not (go a)
  in
  go t

let count_const t =
  let rec cnum = function
    | Feat _ -> 0
    | Const _ -> 1
    | Arith (_, a, b) -> cnum a + cnum b
  in
  let rec go = function
    | True | False -> 0
    | Cmp (_, a, b) -> cnum a + cnum b
    | And (a, b) | Or (a, b) -> go a + go b
    | Not a -> go a
  in
  go t

let replace_const t i c =
  let seen = ref (-1) in
  let rec cnum n =
    match n with
    | Feat _ -> n
    | Const _ ->
      incr seen;
      if !seen = i then Const c else n
    | Arith (op, a, b) ->
      let a' = cnum a in
      let b' = cnum b in
      Arith (op, a', b')
  in
  let rec go t =
    match t with
    | True | False -> t
    | Cmp (op, a, b) ->
      let a' = cnum a in
      let b' = cnum b in
      Cmp (op, a', b')
    | And (a, b) ->
      let a' = go a in
      let b' = go b in
      And (a', b')
    | Or (a, b) ->
      let a' = go a in
      let b' = go b in
      Or (a', b')
    | Not a -> Not (go a)
  in
  go t

let count_cmp t =
  let rec go = function
    | True | False -> 0
    | Cmp _ -> 1
    | And (a, b) | Or (a, b) -> go a + go b
    | Not a -> go a
  in
  go t

let flip_cmp t i =
  let seen = ref (-1) in
  let rec go t =
    match t with
    | True | False -> t
    | Cmp (op, a, b) ->
      incr seen;
      if !seen = i then Cmp ((match op with Le -> Gt | Gt -> Le), a, b) else t
    | And (a, b) ->
      let a' = go a in
      let b' = go b in
      And (a', b')
    | Or (a, b) ->
      let a' = go a in
      let b' = go b in
      Or (a', b')
    | Not a -> Not (go a)
  in
  go t

(* --- variation ----------------------------------------------------------- *)

let graft parent i sub =
  let child = Tree.clamp (replace_bool parent i sub) in
  if Tree.size child > Tree.max_size then parent else child

(* Classic subtree exchange: a random boolean node of each parent swaps into
   the other.  Both offspring are clamped; an over-size child yields its
   parent unchanged. *)
let crossover rng a b =
  let ia = Rng.int rng (count_bool a) in
  let ib = Rng.int rng (count_bool b) in
  let sa = nth_bool a ia in
  let sb = nth_bool b ib in
  let ca = graft a ia sb in
  let cb = graft b ib sa in
  (ca, cb)

(* Point mutation, three variants: replace a random boolean subtree with a
   freshly grown one, redraw one constant from Table 1's ranges, or flip one
   comparison's direction.  The probability draw happens unconditionally so
   the RNG stream does not depend on the outcome. *)
let mutate ~prob rng t =
  let fire = Rng.chance rng prob in
  if not fire then t
  else begin
    let t' =
      match Rng.int rng 3 with
      | 0 ->
        let i = Rng.int rng (count_bool t) in
        let d = Rng.range rng 2 4 in
        let sub = random_bool ~full:false rng d in
        replace_bool t i sub
      | 1 ->
        let n = count_const t in
        if n = 0 then t
        else begin
          let i = Rng.int rng n in
          let c = random_const rng in
          replace_const t i c
        end
      | _ ->
        let n = count_cmp t in
        if n = 0 then t else flip_cmp t (Rng.int rng n)
    in
    let t' = Tree.clamp t' in
    if Tree.size t' > Tree.max_size then t else t'
  end
