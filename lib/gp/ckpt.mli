(** GP checkpoint files — the tree-genome twin of
    {!Inltune_resilience.Checkpoint}.

    Append-only JSONL, one self-contained snapshot per completed generation:
    population (as canonical tree texts), RNG state (decimal string),
    fitness memo cache, quarantine, history, counters, and a
    [pop_size]/[seed] echo for resume validation.  Floats are ["%.17g"] so
    reloading reproduces identical bit patterns; the loader walks back to
    the last line that parses, so a mid-write kill costs at most the final
    generation. *)

module E = Inltune_ga.Evolve

type state = {
  gen : int;
  rng : int64;
  pop : Tree.t array;
  best : Tree.t option;
  best_fitness : float;
  cache : (string * float) list;
  quarantine : string list;
  history : E.progress list;
  evaluations : int;
  cache_hits : int;
  failures : int;
  retries : int;
  pop_size : int;
  seed : int;
}

(** Append one snapshot line (creates the file if needed); bumps
    ["ckpt.writes"] and emits a ["ckpt.write"] trace event with
    [kind = "gp"]. *)
val write : path:string -> state -> unit

(** Parse a single JSONL line (exposed for tests). *)
val of_line : string -> (state, string) result

(** Load the most recent complete snapshot. *)
val load : path:string -> (state, string) result
