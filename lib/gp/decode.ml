(* Decoding a tree genome into a first-class Policy.t — the seam through
   which evolved predicates reach the unchanged inliner/pipeline/VM.

   The decode is deliberately STATIC: the feature context carries no live
   profile, so a site's features depend only on the program text and the
   site record ([edge_calls] is 0, [hot] comes from the inliner's own flag).
   Under [Adapt] the VM records call edges during execution, which means a
   profile-aware decode would make compile-time decisions depend on
   invocation order — breaking both reproducibility across scenarios and
   the soundness of the Opt decision-signature walk the fitness cache keys
   on ([Fitcache.policy_signature] with [~static:true]). *)

module Features = Inltune_policy.Features
module Policy = Inltune_opt.Policy

let policy ~ctx tree =
  Policy.of_predicate ~name:"gp" ~accept_rule:"gp_accept" ~reject_rule:"gp_reject"
    (fun site -> Tree.eval tree (Features.of_site ctx site))

(* The Machine.config factory: ignores the live profile (see above). *)
let factory ~ctx tree =
  let p = policy ~ctx tree in
  fun (_ : Inltune_vm.Profile.t) -> p

(* Fraction of flip-oracle examples the tree labels correctly — the cheap
   surrogate the evolver's pre-filter compares against the current elite
   before paying for simulation.  Empty training data agrees vacuously. *)
let agreement training tree =
  let n = Array.length training in
  if n = 0 then 1.0
  else begin
    let ok = ref 0 in
    Array.iter (fun (x, label) -> if Tree.eval tree x = label then incr ok) training;
    Float.of_int !ok /. Float.of_int n
  end
