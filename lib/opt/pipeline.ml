open Inltune_jir
(* The optimizing compiler's middle end, in Jikes order: devirtualize what is
   provable, inline under the heuristic, then let constant propagation /
   copy propagation / DCE collect the payoff, and clean the CFG.

   The returned [stats] carry the size trajectory the VM's compile-time model
   charges for: [size_before] (input bytecode), [size_peak] (right after
   inlining, the IR every downstream pass must chew through — this is where
   over-aggressive inlining costs compile time), and [size_after] (emitted
   code, which is what occupies the I-cache). *)

type site_decision =
  site_owner:Ir.mid ->
  callee:Ir.mid ->
  callee_size:int ->
  inline_depth:int ->
  caller_size:int ->
  bool

type config = {
  heuristic : Heuristic.t;
  inline_enabled : bool;
  optimize : bool;  (* run the dataflow passes; off only for ablations *)
  hot_site : (site_owner:Ir.mid -> callee:Ir.mid -> bool) option;
  policy : Policy.t option;
      (* first-class policy replacing the heuristic (e.g. a learned tree) *)
  custom_inliner : site_decision option;
      (* bare decision closure; overrides both (e.g. the knapsack baseline) *)
  devirt_oracle : Guarded_devirt.site_oracle option;
      (* adaptive scenario: guard-devirtualize monomorphic virtual sites *)
}

let opt_config ?hot_site heuristic =
  { heuristic; inline_enabled = true; optimize = true; hot_site; policy = None;
    custom_inliner = None; devirt_oracle = None }

let no_inline_config =
  {
    heuristic = Heuristic.never;
    inline_enabled = false;
    optimize = true;
    hot_site = None;
    policy = None;
    custom_inliner = None;
    devirt_oracle = None;
  }

let custom_config decide =
  {
    heuristic = Heuristic.never;
    inline_enabled = true;
    optimize = true;
    hot_site = None;
    policy = None;
    custom_inliner = Some decide;
    devirt_oracle = None;
  }

let policy_config ?hot_site policy =
  {
    heuristic = Heuristic.never;
    inline_enabled = true;
    optimize = true;
    hot_site;
    policy = Some policy;
    custom_inliner = None;
    devirt_oracle = None;
  }

type stats = {
  size_before : int;
  size_peak : int;
  size_after : int;
  sites_seen : int;
  sites_inlined : int;
  hot_sites_seen : int;
  hot_sites_inlined : int;
  sites_guarded : int;
  folded : int;
  devirtualized : int;
  cse_replaced : int;
  copies_propagated : int;
  dce_removed : int;
}

module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event

(* Per-pass timing + transform-count events.  [Trace.span] runs the thunk
   directly when tracing is off, so the disabled cost is one closure. *)
let pass name count f =
  Trace.span ("opt.pass." ^ name) ~post:(fun r -> [ ("transforms", Event.Int (count r)) ]) f

let count_cp (_, s) = s.Constprop.folded + s.Constprop.devirtualized + s.Constprop.branches_folded
let count_snd (_, n) = n

let run program config m =
  let size_before = Size.of_method m in
  (* Round 0: profile-guided guarded devirtualization (adaptive recompiles
     only) so monomorphic virtual sites become inlinable static calls. *)
  let m, gstats =
    match config.devirt_oracle with
    | Some oracle ->
      pass "guarded_devirt" (fun (_, s) -> s.Guarded_devirt.sites_guarded) (fun () ->
          Guarded_devirt.run ~program ~oracle m)
    | None -> (m, { Guarded_devirt.sites_guarded = 0 })
  in
  (* Round 1: make provable virtual dispatch static so the inliner sees it. *)
  let m, cp1 =
    if config.optimize then pass "constprop" count_cp (fun () -> Constprop.run program m)
    else (m, { Constprop.folded = 0; devirtualized = 0; branches_folded = 0 })
  in
  let m, istats =
    if not config.inline_enabled then (m, Inline.fresh_stats ())
    else
      pass "inline" (fun (_, s) -> s.Inline.sites_inlined) (fun () ->
          match (config.custom_inliner, config.policy) with
          | Some decide, _ -> Inline.run_custom ~decide ~program m
          | None, Some policy ->
            Inline.run_policy ?hot_site:config.hot_site ~program ~policy m
          | None, None ->
            Inline.run ?hot_site:config.hot_site ~program ~heuristic:config.heuristic m)
  in
  let size_peak = Size.of_method m in
  let m, cp2 =
    if config.optimize then pass "constprop" count_cp (fun () -> Constprop.run program m)
    else (m, { Constprop.folded = 0; devirtualized = 0; branches_folded = 0 })
  in
  let m, cse = if config.optimize then pass "cse" count_snd (fun () -> Cse.run m) else (m, 0) in
  let m, copies =
    if config.optimize then pass "copyprop" count_snd (fun () -> Copyprop.run m) else (m, 0)
  in
  let m, removed =
    if config.optimize then pass "dce" count_snd (fun () -> Dce.run m) else (m, 0)
  in
  let m = pass "cleanup" (fun _ -> 0) (fun () -> Cleanup.run m) in
  let stats =
    {
      size_before;
      size_peak;
      size_after = Size.of_method m;
      sites_seen = istats.Inline.sites_seen;
      sites_inlined = istats.Inline.sites_inlined;
      hot_sites_seen = istats.Inline.hot_sites_seen;
      hot_sites_inlined = istats.Inline.hot_sites_inlined;
      sites_guarded = gstats.Guarded_devirt.sites_guarded;
      folded = cp1.Constprop.folded + cp2.Constprop.folded;
      devirtualized = cp1.Constprop.devirtualized + cp2.Constprop.devirtualized;
      cse_replaced = cse;
      copies_propagated = copies;
      dce_removed = removed;
    }
  in
  if Trace.enabled () then
    Trace.emit "opt.method"
      ~fields:
        [
          ("method", Event.Str m.Ir.mname);
          ("size_before", Event.Int stats.size_before);
          ("size_peak", Event.Int stats.size_peak);
          ("size_after", Event.Int stats.size_after);
          ("sites_seen", Event.Int stats.sites_seen);
          ("sites_inlined", Event.Int stats.sites_inlined);
          ("folded", Event.Int stats.folded);
          ("dce_removed", Event.Int stats.dce_removed);
        ];
  (m, stats)
