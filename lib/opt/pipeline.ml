open Inltune_jir
(* The optimizing compiler's middle end, as a thin interpreter over a
   {!Plan.t}: each enabled plan item looks up its {!Pass.t}, runs it (knob
   "iters" times), and contributes a uniform {!Pass.delta}.  The default
   plan reproduces the historical hard-coded order — devirtualize what is
   provable, inline under the decider, then let constant propagation / CSE /
   copy propagation / DCE collect the payoff, and clean the CFG — so
   pre-plan experiments are bit-identical.

   The returned [stats] carry the size trajectory the VM's compile-time
   model charges for: [size_before] (input bytecode), [size_peak] (right
   after the inline item, the IR every downstream pass must chew through —
   this is where over-aggressive inlining costs compile time), and
   [size_after] (emitted code, which is what occupies the I-cache).  The
   aggregate counters are the field-wise sum of the per-item deltas — no ad
   hoc per-pass arithmetic — so [run_detailed]'s deltas always sum exactly
   to the totals. *)

type site_decision = Decider.site_decision

type config = {
  decider : Decider.t;
  plan : Plan.t;
  hot_site : (site_owner:Ir.mid -> callee:Ir.mid -> bool) option;
      (* adaptive scenario: which call sites are profile-hot *)
  devirt_oracle : Guarded_devirt.site_oracle option;
      (* adaptive scenario: guard-devirtualize monomorphic virtual sites *)
  profile : Hotpath.view option;
      (* adaptive scenario: live call-edge counts (hot-path strategy) *)
}

(* The one constructor every configuration goes through. *)
let make ?(plan = Plan.default) ?hot_site ?devirt_oracle ?profile decider =
  { decider; plan; hot_site; devirt_oracle; profile }

(* Standard optimizing configuration around a heuristic. *)
let opt_config ?hot_site heuristic = make ?hot_site (Decider.Heuristic heuristic)

(* Optimizations on, inlining off (the paper's Fig. 1 baseline).  The
   decider is never consulted — the plan's inline item is disabled. *)
let no_inline_config = make ~plan:Plan.no_inline (Decider.Heuristic Heuristic.default)

(* Optimizations on, inlining decided per call site by [decide]. *)
let custom_config decide = make (Decider.Custom decide)

(* Optimizations on, inlining decided by a first-class {!Policy.t}. *)
let policy_config ?hot_site policy = make ?hot_site (Decider.Policy policy)

type stats = {
  size_before : int;
  size_peak : int;
  size_after : int;
  sites_seen : int;
  sites_inlined : int;
  hot_sites_seen : int;
  hot_sites_inlined : int;
  sites_guarded : int;
  folded : int;
  devirtualized : int;
  cse_replaced : int;
  copies_propagated : int;
  dce_removed : int;
}

module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event
module Metric = Inltune_obs.Metric

(* Counters are re-resolved per use (not captured at module init) so they
   stay attached to the registry across [Metric.reset_all]. *)
let bump_pass name d =
  Metric.incr (Metric.counter ("pass." ^ name ^ ".runs"));
  let tr = Pass.transforms d in
  if tr > 0 then Metric.add (Metric.counter ("pass." ^ name ^ ".transforms")) tr

(* One invocation of one pass: a span with the pass's own transform count
   and the size it produced ([Trace.span] runs the thunk directly when
   tracing is off, so the disabled cost is one closure; the size fields are
   only computed inside the enabled-only [post] callback). *)
let exec_pass program ctx (p : Pass.t) ~knob size_in m =
  let m, d =
    (* Nested inside the trace span so the profiler attributes pass time
       under whatever compiled it ("...;vm.compile;opt.pass.<name>"). *)
    Trace.span
      ("opt.pass." ^ p.Pass.name)
      ~post:(fun (m', d) ->
        [
          ("transforms", Event.Int (Pass.transforms d));
          ("sites_inlined", Event.Int d.Pass.d_sites_inlined);
          ("size_in", Event.Int (Lazy.force size_in));
          ("size_out", Event.Int (Size.of_method m'));
        ])
      (fun () ->
        Inltune_obs.Prof.span ("opt.pass." ^ p.Pass.name) (fun () ->
            p.Pass.run program ctx ~knob m))
  in
  bump_pass p.Pass.name d;
  (m, d)

(* Interpret the plan.  Returns the per-item deltas alongside the method
   and totals; [size_peak] is recorded right after the plan's *last*
   inliner-kind item ({!Pass.inliner_names}) — enabled or not, matching the
   historical trajectory for both the inlining and the no-inlining
   configurations (in the default plan every strategy item is disabled, so
   the size there equals the size right after the inline item).  Plans
   without any inliner item fall back to the maximum size reached. *)
let run_detailed program config m =
  let ctx =
    {
      Pass.decider = config.decider;
      hot_site = config.hot_site;
      devirt_oracle = config.devirt_oracle;
      profile = config.profile;
    }
  in
  let size_before = Size.of_method m in
  let last_inliner =
    let last = ref (-1) in
    Array.iteri
      (fun i (it : Plan.item) -> if Pass.is_inliner_name it.Plan.pass then last := i)
      config.plan.Plan.items;
    !last
  in
  let track_max = last_inliner < 0 in
  let size_peak = ref (if track_max then size_before else -1) in
  let deltas = ref [] in
  let cur = ref m in
  Array.iteri
    (fun idx (it : Plan.item) ->
      (if it.Plan.enabled then
         match Pass.find it.Plan.pass with
         | None -> () (* unreachable for validated plans *)
         | Some p ->
           if p.Pass.applicable ctx then begin
             let knob name = Plan.item_knob it name in
             let iters =
               match Pass.find_knob p "iters" with Some _ -> knob "iters" | None -> 1
             in
             let acc = ref Pass.zero_delta in
             for _ = 1 to iters do
               let before = !cur in
               let size_in = lazy (Size.of_method before) in
               let m', d = exec_pass program ctx p ~knob size_in before in
               cur := m';
               acc := Pass.add_delta !acc d
             done;
             deltas := (p.Pass.name, !acc) :: !deltas
           end);
      if idx = last_inliner && !size_peak < 0 then size_peak := Size.of_method !cur
      else if track_max then size_peak := max !size_peak (Size.of_method !cur))
    config.plan.Plan.items;
  let m = !cur in
  let size_after = Size.of_method m in
  let size_peak = if !size_peak < 0 then size_after else !size_peak in
  let total = List.fold_left (fun acc (_, d) -> Pass.add_delta acc d) Pass.zero_delta !deltas in
  let stats =
    {
      size_before;
      size_peak;
      size_after;
      sites_seen = total.Pass.d_sites_seen;
      sites_inlined = total.Pass.d_sites_inlined;
      hot_sites_seen = total.Pass.d_hot_sites_seen;
      hot_sites_inlined = total.Pass.d_hot_sites_inlined;
      sites_guarded = total.Pass.d_sites_guarded;
      folded = total.Pass.d_folded;
      devirtualized = total.Pass.d_devirtualized;
      cse_replaced = total.Pass.d_cse_replaced;
      copies_propagated = total.Pass.d_copies_propagated;
      dce_removed = total.Pass.d_dce_removed;
    }
  in
  if Trace.enabled () then
    Trace.emit "opt.method"
      ~fields:
        [
          ("method", Event.Str m.Ir.mname);
          ("size_before", Event.Int stats.size_before);
          ("size_peak", Event.Int stats.size_peak);
          ("size_after", Event.Int stats.size_after);
          ("sites_seen", Event.Int stats.sites_seen);
          ("sites_inlined", Event.Int stats.sites_inlined);
          ("folded", Event.Int stats.folded);
          ("dce_removed", Event.Int stats.dce_removed);
        ];
  (m, stats, List.rev !deltas)

let run program config m =
  let m, stats, _ = run_detailed program config m in
  (m, stats)
