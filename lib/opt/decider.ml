open Inltune_jir

(* The single inlining-decision variant.  The pipeline used to thread three
   overlapping config fields (heuristic / policy option / custom closure)
   whose precedence lived in the inline-pass dispatch; the variant makes the
   choice a value, so a config holds exactly one decider and the pass match
   is total. *)

type site_decision =
  site_owner:Ir.mid ->
  callee:Ir.mid ->
  callee_size:int ->
  inline_depth:int ->
  caller_size:int ->
  bool

type t =
  | Heuristic of Heuristic.t  (* the paper's Fig. 3/4 threshold procedure *)
  | Policy of Policy.t        (* first-class policy, e.g. a learned tree *)
  | Custom of site_decision   (* bare closure, e.g. the knapsack baseline *)

let name = function
  | Heuristic _ -> "heuristic"
  | Policy p -> p.Policy.name
  | Custom _ -> "custom"
