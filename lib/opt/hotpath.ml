open Inltune_jir
(* Profile-guided hot-path inliner strategy (the AOS line: spend code space
   where the profile says the program actually lives).

   The adaptive tiers already collect per-call-edge execution counts
   ({!Inltune_vm.Profile}); this strategy consumes them through a [view] —
   two closures over the live profile, installed by the VM at compile time —
   and inlines a site iff its edge carries at least [hot_permille] ‰ of all
   recorded calls, subject to a per-root expansion [budget] like the region
   strategy's.  Unlike the Fig. 4 hot test (a single callee-size threshold
   on sites a *fixed platform fraction* classifies as hot), the hotness cut
   here is a tunable knob, so the GA can trade code growth against
   steady-state speed per program.

   Decisions read the live profile, so the strategy is *not* static:
   Fitcache cannot walk it and falls back to plan-digest isolation (the
   knobs are part of the plan text, and the profile trajectory is
   deterministic given the plan and heuristic — see fitcache.ml). *)

(* What the strategy is allowed to see of the live profile. *)
type view = {
  edge_count : site_owner:Ir.mid -> callee:Ir.mid -> int;
  total_calls : unit -> int;
}

(* [policy ~hot_permille ~budget view root] accepts a site iff its call
   edge carries at least [hot_permille] per-mille of all recorded calls and
   the expansion over [root] stays within [budget]. *)
let policy ~hot_permille ~budget view root =
  let root_size = Size.of_method root in
  Policy.of_predicate
    ~name:(Printf.sprintf "hotpath(hot_permille=%d,budget=%d)" hot_permille budget)
    ~accept_rule:"hot_path" ~reject_rule:"cold_path" (fun s ->
      let total = view.total_calls () in
      total > 0
      && view.edge_count ~site_owner:s.Policy.owner ~callee:s.Policy.callee * 1000
         >= hot_permille * total
      && s.Policy.caller_size - root_size + s.Policy.callee_size <= budget)
