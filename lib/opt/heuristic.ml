(* The tuned object of the paper: Jikes RVM's five-parameter inlining
   heuristic, transcribed from the paper's Figures 3 and 4.

   [consider] is the optimizing compiler's test sequence (Fig. 3); note the
   order matters and is part of the heuristic's semantics: tiny callees are
   inlined *before* the depth and caller-size limits are consulted.
   [consider_hot] is the single test used for profile-identified hot call
   sites under the adaptive scenario (Fig. 4). *)

type t = {
  callee_max_size : int;
  always_inline_size : int;
  max_inline_depth : int;
  caller_max_size : int;
  hot_callee_max_size : int;
}

(* Default values shipped with Jikes RVM (paper Table 4, first column). *)
let default =
  {
    callee_max_size = 23;
    always_inline_size = 11;
    max_inline_depth = 5;
    caller_max_size = 2048;
    hot_callee_max_size = 135;
  }

(* A heuristic that never inlines: callee_size >= 1 > 0 always fails the
   first test.  Used for the paper's "no inlining" baselines (Fig. 1). *)
let never =
  {
    callee_max_size = 0;
    always_inline_size = 0;
    max_inline_depth = 0;
    caller_max_size = 0;
    hot_callee_max_size = 0;
  }

(* Which Fig. 3 test decided a call site.  The order of tests is part of the
   heuristic's semantics (tiny callees bypass the depth and caller limits),
   so the outcome names exactly which test fired — the vocabulary the
   observability layer and trace summaries use for rejection reasons. *)
type outcome =
  | Callee_too_big   (* reject: size > CALLEE_MAX_SIZE *)
  | Always_inline    (* accept: size < ALWAYS_INLINE_SIZE, before depth/caller *)
  | Depth_exceeded   (* reject: depth > MAX_INLINE_DEPTH *)
  | Caller_too_big   (* reject: expanded caller > CALLER_MAX_SIZE *)
  | All_tests_pass   (* accept: survived every test *)

let outcome_name = function
  | Callee_too_big -> "callee_too_big"
  | Always_inline -> "always_inline"
  | Depth_exceeded -> "depth_exceeded"
  | Caller_too_big -> "caller_too_big"
  | All_tests_pass -> "all_tests_pass"

let evaluate t ~callee_size ~inline_depth ~caller_size =
  if callee_size > t.callee_max_size then Callee_too_big
  else if callee_size < t.always_inline_size then Always_inline
  else if inline_depth > t.max_inline_depth then Depth_exceeded
  else if caller_size > t.caller_max_size then Caller_too_big
  else All_tests_pass

let consider t ~callee_size ~inline_depth ~caller_size =
  match evaluate t ~callee_size ~inline_depth ~caller_size with
  | Always_inline | All_tests_pass -> true
  | Callee_too_big | Depth_exceeded | Caller_too_big -> false

(* The single Fig. 4 test for profile-identified hot call sites. *)
type hot_outcome = Hot_accept | Hot_callee_too_big

let hot_outcome_name = function
  | Hot_accept -> "hot_accept"
  | Hot_callee_too_big -> "hot_callee_too_big"

let evaluate_hot t ~callee_size =
  if callee_size <= t.hot_callee_max_size then Hot_accept else Hot_callee_too_big

let consider_hot t ~callee_size = evaluate_hot t ~callee_size = Hot_accept

(* Genome encoding used by the genetic algorithm: the five parameters in
   Table 1 order. *)
let to_array t =
  [|
    t.callee_max_size;
    t.always_inline_size;
    t.max_inline_depth;
    t.caller_max_size;
    t.hot_callee_max_size;
  |]

(* Paper Table 1: the GA's search ranges. *)
let ranges = [| (1, 50); (1, 20); (1, 15); (1, 4000); (1, 400) |]

(* Genes arrive from the GA, hand-written CLI overrides, and checkpoint
   files; the last two can carry anything.  Clamping into the Table 1 ranges
   here means no caller can build an out-of-range heuristic (a 0 or negative
   parameter would make the Fig. 3 tests nonsensical), and the GA's own
   genomes are always in range already so clamping never alters them. *)
let of_array a =
  if Array.length a <> 5 then invalid_arg "Heuristic.of_array: need 5 genes";
  let clamp i v =
    let lo, hi = ranges.(i) in
    max lo (min hi v)
  in
  {
    callee_max_size = clamp 0 a.(0);
    always_inline_size = clamp 1 a.(1);
    max_inline_depth = clamp 2 a.(2);
    caller_max_size = clamp 3 a.(3);
    hot_callee_max_size = clamp 4 a.(4);
  }

let equal a b = a = b

let to_string t =
  Printf.sprintf "{callee_max=%d always=%d depth=%d caller_max=%d hot_callee=%d}"
    t.callee_max_size t.always_inline_size t.max_inline_depth t.caller_max_size
    t.hot_callee_max_size

let param_names =
  [|
    "CALLEE_MAX_SIZE";
    "ALWAYS_INLINE_SIZE";
    "MAX_INLINE_DEPTH";
    "CALLER_MAX_SIZE";
    "HOT_CALLEE_MAX_SIZE";
  |]

let clamp_to_ranges a =
  Array.mapi
    (fun i v ->
      let lo, hi = ranges.(i) in
      max lo (min hi v))
    a

let with_depth t d = { t with max_inline_depth = d }
