open Inltune_jir
(* Dead-code elimination by global liveness.

   Backward dataflow: a register is live at a point if some path from there
   reads it before writing it.  Pure instructions (no side effect beyond
   their destination) whose destination is dead are deleted.  Calls, stores
   and prints are always kept.

   Together with constant propagation this removes the computation that
   folding made redundant — most of the code-size payback the optimizing
   compiler gets for having inlined.

   Live sets are bit vectors packed into int arrays (one [words]-sized slice
   per block) and the per-instruction transfer sets/clears bits via direct
   matches, with no per-instruction allocation: liveness runs inside every
   optimizing compile and dominates its wall time on big post-inlining
   methods.  The fixpoint is the unique least solution, so the result is
   identical to the straightforward set-based formulation. *)

(* Liveness is O(blocks * registers); monster methods produced by maximally
   aggressive inlining are skipped, mirroring [Constprop.analysis_budget]. *)
let analysis_budget = 2_000_000

let run m =
  if Array.length m.Ir.blocks * m.Ir.nregs > analysis_budget then (m, 0)
  else begin
    let blocks = m.Ir.blocks in
    let nblocks = Array.length blocks in
    let nregs = m.Ir.nregs in
    let words = (nregs + 62) / 63 in
    let live_in = Array.make (nblocks * words) 0 in
    let live_out = Array.make (nblocks * words) 0 in
    (* The block being transferred, as a scratch bit vector. *)
    let cur = Array.make words 0 in
    let set r = cur.(r / 63) <- cur.(r / 63) lor (1 lsl (r mod 63)) in
    let clear r = cur.(r / 63) <- cur.(r / 63) land lnot (1 lsl (r mod 63)) in
    let mem r = cur.(r / 63) land (1 lsl (r mod 63)) <> 0 in
    let add_uses = function
      | Ir.Const _ | Ir.Alloc _ -> ()
      | Ir.Move (_, s) -> set s
      | Ir.Binop (_, _, a, b) | Ir.Cmp (_, _, a, b) ->
        set a;
        set b
      | Ir.Load (_, o, _) -> set o
      | Ir.Store (o, _, s) ->
        set o;
        set s
      | Ir.LoadIdx (_, o, ix) ->
        set o;
        set ix
      | Ir.StoreIdx (o, ix, s) ->
        set o;
        set ix;
        set s
      | Ir.ClassOf (_, o) -> set o
      | Ir.Call (_, _, args) -> Array.iter set args
      | Ir.CallVirt (_, _, recv, args) ->
        set recv;
        Array.iter set args
      | Ir.Print s -> set s
    in
    let clear_def = function
      | Ir.Const (d, _)
      | Ir.Move (d, _)
      | Ir.Binop (_, d, _, _)
      | Ir.Cmp (_, d, _, _)
      | Ir.Load (d, _, _)
      | Ir.LoadIdx (d, _, _)
      | Ir.ClassOf (d, _)
      | Ir.Alloc (d, _, _)
      | Ir.Call (d, _, _)
      | Ir.CallVirt (d, _, _, _) -> clear d
      | Ir.Store _ | Ir.StoreIdx _ | Ir.Print _ -> ()
    in
    let add_term_uses = function
      | Ir.Jump _ -> ()
      | Ir.Branch (c, _, _) -> set c
      | Ir.Ret r -> set r
    in
    (* Predecessor lists for the backward worklist. *)
    let preds = Array.make nblocks [] in
    Array.iteri
      (fun bi blk ->
        List.iter (fun s -> preds.(s) <- bi :: preds.(s)) (Ir.successors blk.Ir.term))
      blocks;
    (* cur <- live-in of [bi], computed from the stored live-out. *)
    let transfer bi =
      Array.blit live_out (bi * words) cur 0 words;
      let blk = blocks.(bi) in
      add_term_uses blk.Ir.term;
      let instrs = blk.Ir.instrs in
      for k = Array.length instrs - 1 downto 0 do
        let i = instrs.(k) in
        clear_def i;
        add_uses i
      done
    in
    (* Allocation-free worklist: an int stack with an on-stack flag so a
       block is never queued twice.  The fixpoint is the unique least
       solution, so visit order (and hence the switch from the previous
       FIFO with duplicates) cannot change the resulting live sets — it
       only avoids redundant transfers of already-queued blocks. *)
    let work = Array.make nblocks 0 in
    let on_work = Bytes.make nblocks '\001' in
    let sp = ref nblocks in
    (* Popped top-down, so the last block comes off first — the same
       late-blocks-first start order the previous FIFO used, which is the
       fast direction for a backward analysis. *)
    for bi = 0 to nblocks - 1 do
      work.(bi) <- bi
    done;
    while !sp > 0 do
      decr sp;
      let bi = work.(!sp) in
      Bytes.unsafe_set on_work bi '\000';
      let ob = bi * words in
      Array.fill live_out ob words 0;
      (* Direct terminator match: [Ir.successors] allocates a list per
         fixpoint iteration, and this loop runs far more often than once
         per block. *)
      let merge s =
        let sb = s * words in
        for w = 0 to words - 1 do
          live_out.(ob + w) <- live_out.(ob + w) lor live_in.(sb + w)
        done
      in
      (match blocks.(bi).Ir.term with
      | Ir.Jump l -> merge l
      | Ir.Branch (_, t, f) ->
        merge t;
        merge f
      | Ir.Ret _ -> ());
      transfer bi;
      let ib = bi * words in
      let changed = ref false in
      for w = 0 to words - 1 do
        if cur.(w) <> live_in.(ib + w) then begin
          changed := true;
          live_in.(ib + w) <- cur.(w)
        end
      done;
      if !changed then
        List.iter
          (fun p ->
            if Bytes.unsafe_get on_work p = '\000' then begin
              Bytes.unsafe_set on_work p '\001';
              work.(!sp) <- p;
              incr sp
            end)
          preds.(bi)
    done;
    let removed = ref 0 in
    let blocks' =
      Array.mapi
        (fun bi blk ->
          Array.blit live_out (bi * words) cur 0 words;
          add_term_uses blk.Ir.term;
          let instrs = blk.Ir.instrs in
          let n = Array.length instrs in
          let keep = Array.make n true in
          let kept = ref 0 in
          for k = n - 1 downto 0 do
            let i = instrs.(k) in
            let dead =
              Ir.pure i
              &&
              match i with
              | Ir.Const (d, _)
              | Ir.Move (d, _)
              | Ir.Binop (_, d, _, _)
              | Ir.Cmp (_, d, _, _)
              | Ir.Load (d, _, _)
              | Ir.LoadIdx (d, _, _)
              | Ir.ClassOf (d, _)
              | Ir.Alloc (d, _, _) -> not (mem d)
              | _ -> false
            in
            if dead then begin
              keep.(k) <- false;
              incr removed
            end
            else begin
              incr kept;
              clear_def i;
              add_uses i
            end
          done;
          if !kept = n then blk
          else begin
            let instrs' = Array.make !kept (Ir.Print 0) in
            let j = ref 0 in
            for k = 0 to n - 1 do
              if keep.(k) then begin
                instrs'.(!j) <- instrs.(k);
                incr j
              end
            done;
            { blk with Ir.instrs = instrs' }
          end)
        blocks
    in
    ({ m with Ir.blocks = blocks' }, !removed)
  end
