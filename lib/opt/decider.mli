open Inltune_jir
(** The single inlining-decision variant consulted by the inline pass,
    replacing the three overlapping config fields the pipeline used to
    thread (heuristic / policy option / custom closure). *)

type site_decision =
  site_owner:Ir.mid ->
  callee:Ir.mid ->
  callee_size:int ->
  inline_depth:int ->
  caller_size:int ->
  bool

type t =
  | Heuristic of Heuristic.t
      (** the paper's Fig. 3/4 threshold procedure *)
  | Policy of Policy.t
      (** first-class policy replacing the heuristic (e.g. a learned tree) *)
  | Custom of site_decision
      (** bare decision closure (e.g. the knapsack baseline); ignores the
          hot-site classifier, exactly as [Inline.run_custom] does *)

(** Decider family name, for reports ("heuristic", the policy's name, or
    "custom"). *)
val name : t -> string
