open Inltune_jir
(* Forward constant propagation with a small class-analysis extension.

   This pass carries the *indirect* benefit of inlining: once a callee body
   sits inside its caller, constant actual arguments flow into it and whole
   computations fold away — exactly the effect the paper credits inlining with
   ("increasing the opportunities for compiler optimization").

   Lattice per register:
     Undef  — no definition seen on any path yet (bottom)
     Const  — known integer value
     Obj    — known allocation class (enables devirtualization)
     Any    — top

   A standard worklist fixpoint over the CFG, then a rewrite:
   - binops/cmps whose operands are all constant become [Const];
   - algebraic identities with one constant operand simplify (x+0, x*1, x*0,
     x-0, x and 0, x or 0, shifts by 0);
   - moves of known constants become [Const];
   - branches on constant conditions become [Jump];
   - virtual calls whose receiver has a known class become static [Call]s
     (receiver passed as first argument), which the inliner can then see.

   The lattice lives in a flat unboxed encoding — a tag int plus a payload
   int per register, in two [nblocks * nregs] arrays — so the fixpoint's
   inner join loop and the per-visit transfer allocate nothing.  The least
   fixpoint is unique, so the encoding change cannot alter which rewrites
   fire; post-inlining monster methods are where this pass spends its time
   and the boxed formulation drowned in minor collections there. *)

let t_undef = 0
let t_const = 1
let t_obj = 2
let t_any = 3

(* One instruction's effect on the flat environment. *)
let transfer env_tag env_val i =
  let set d t v =
    env_tag.(d) <- t;
    env_val.(d) <- v
  in
  match i with
  | Ir.Const (d, n) -> set d t_const n
  | Ir.Move (d, s) -> set d env_tag.(s) env_val.(s)
  | Ir.Binop (op, d, a, b) ->
    if env_tag.(a) = t_const && env_tag.(b) = t_const then
      set d t_const (Ir.eval_binop op env_val.(a) env_val.(b))
    else set d t_any 0
  | Ir.Cmp (op, d, a, b) ->
    if env_tag.(a) = t_const && env_tag.(b) = t_const then
      set d t_const (Ir.eval_cmp op env_val.(a) env_val.(b))
    else set d t_any 0
  | Ir.Load (d, _, _) | Ir.LoadIdx (d, _, _) -> set d t_any 0
  | Ir.ClassOf (d, o) ->
    if env_tag.(o) = t_obj then set d t_const env_val.(o) else set d t_any 0
  | Ir.Store _ | Ir.StoreIdx _ -> ()
  | Ir.Alloc (d, kid, _) -> set d t_obj kid
  | Ir.Call (d, _, _) | Ir.CallVirt (d, _, _, _) -> set d t_any 0
  | Ir.Print _ -> ()

(* Per-domain scratch for the [nblocks * nregs] lattice state, reused across
   calls: allocating fresh multi-10k-word arrays on every compile made the
   allocation-point major GC slices cost more than the fixpoint itself.  The
   scratch is not cleared between calls at all — see the write-before-read
   argument at the top of [analyze]. *)
let state_scratch : (int array * int array) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref ([||], [||]))

let get_state_scratch need =
  let cell = Domain.DLS.get state_scratch in
  let tags, _ = !cell in
  if Array.length tags >= need then !cell
  else begin
    let n = max need (2 * Array.length tags) in
    let fresh = (Array.make n 0, Array.make n 0) in
    cell := fresh;
    fresh
  end

let analyze m =
  let nblocks = Array.length m.Ir.blocks in
  let nregs = m.Ir.nregs in
  (* Only registers with an upward-exposed use somewhere — read in some block
     (instruction or terminator) before any definition in that block — need
     cross-block lattice state: any other register's incoming value is never
     consulted, by either the transfer or the rewrite.  Post-inlining bodies
     are dominated by block-local temporaries, so carrying, blitting and
     joining state for all [nregs] registers made the fixpoint's cost scale
     with code the analysis never looks at.  [gregs] lists the carried
     registers; [g_of] maps a register to its slot in a block's state slice.
     The restriction is exact, not approximate, so every fold/devirt decision
     is identical to the dense formulation's. *)
  let g_of = Array.make nregs (-1) in
  let gregs = Array.make nregs 0 in
  let ng = ref 0 in
  let def_stamp = Array.make nregs (-1) in
  for bi = 0 to nblocks - 1 do
    let blk = m.Ir.blocks.(bi) in
    let use r =
      if def_stamp.(r) <> bi && g_of.(r) < 0 then begin
        g_of.(r) <- !ng;
        gregs.(!ng) <- r;
        incr ng
      end
    in
    Array.iter
      (fun i ->
        Ir.iter_uses use i;
        let d = Ir.def_reg i in
        if d >= 0 then def_stamp.(d) <- bi)
      blk.Ir.instrs;
    match blk.Ir.term with
    | Ir.Branch (c, _, _) -> use c
    | Ir.Ret r -> use r
    | Ir.Jump _ -> ()
  done;
  let ng = !ng in
  let in_tag, in_val = get_state_scratch (nblocks * ng) in
  (* No bulk clear of the scratch: a block's state slice is only ever read
     after it was written in full — the entry loop below covers block 0, and
     every other block's slice is first written by the wholesale
     [preds_done] scatter before any join or visit reads it.  Unreachable
     blocks are never flowed into; [rewrite] re-creates their all-Undef
     in-state from the [reached] flags instead of reading the slice. *)
  (* Entry: arguments hold caller-supplied values; all other registers are
     zero-initialized by the calling convention (see [Interp]), so Const 0 is
     both sound and precise.  The payload write matters: the scratch may hold
     another method's values, and a stale [in_val] under a Const tag would
     fold to the wrong constant. *)
  for gi = 0 to ng - 1 do
    in_tag.(gi) <- (if gregs.(gi) < m.Ir.nargs then t_any else t_const);
    in_val.(gi) <- 0
  done;
  let env_tag = Array.make nregs 0 in
  let env_val = Array.make nregs 0 in
  let preds_done = Array.make nblocks false in
  preds_done.(0) <- true;
  (* Reverse postorder over the reachable blocks.  Processing pending blocks
     in this order lets one sweep push values through whole forward chains,
     so the fixpoint converges in about loop-depth + 2 sweeps instead of
     rippling one block per visit; the least fixpoint itself is
     order-independent, so the result is unchanged.  Unreachable blocks are
     never processed; [rewrite] treats them as all-Undef via [seen]. *)
  let order = Array.make nblocks 0 in
  let onum = ref nblocks in
  let seen = Array.make nblocks false in
  let stack = Stack.create () in
  Stack.push (0, Ir.successors m.Ir.blocks.(0).Ir.term) stack;
  seen.(0) <- true;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | bi, [] ->
      decr onum;
      order.(!onum) <- bi
    | bi, s :: rest ->
      Stack.push (bi, rest) stack;
      if not seen.(s) then begin
        seen.(s) <- true;
        Stack.push (s, Ir.successors m.Ir.blocks.(s).Ir.term) stack
      end
  done;
  let first = !onum in
  let pending = Array.make nblocks false in
  pending.(0) <- true;
  let npending = ref 1 in
  while !npending > 0 do
    for k = first to nblocks - 1 do
      let bi = order.(k) in
      if pending.(bi) then begin
        pending.(bi) <- false;
        decr npending;
        let ib = bi * ng in
        for gi = 0 to ng - 1 do
          let r = Array.unsafe_get gregs gi in
          Array.unsafe_set env_tag r (Array.unsafe_get in_tag (ib + gi));
          Array.unsafe_set env_val r (Array.unsafe_get in_val (ib + gi))
        done;
        let blk = m.Ir.blocks.(bi) in
        Array.iter (transfer env_tag env_val) blk.Ir.instrs;
        List.iter
          (fun succ ->
            let changed = ref false in
            let sb = succ * ng in
            if not preds_done.(succ) then begin
              (* First flow into this block: adopt env wholesale. *)
              for gi = 0 to ng - 1 do
                let r = Array.unsafe_get gregs gi in
                Array.unsafe_set in_tag (sb + gi) (Array.unsafe_get env_tag r);
                Array.unsafe_set in_val (sb + gi) (Array.unsafe_get env_val r)
              done;
              preds_done.(succ) <- true;
              changed := true
            end
            else
              (* dst <- join dst env, written out on the flat encoding:
                 join with Undef is identity, Any absorbs, equal Const/Obj
                 values persist, any other mix goes to Any.  Unsafe accesses:
                 [sb + gi < nblocks * ng] and [gi < ng] by construction, and
                 this loop is the pass's hottest code. *)
              for gi = 0 to ng - 1 do
                let dt = Array.unsafe_get in_tag (sb + gi)
                and et = Array.unsafe_get env_tag (Array.unsafe_get gregs gi) in
                if et = t_undef || dt = t_any then ()
                else if dt = t_undef then begin
                  Array.unsafe_set in_tag (sb + gi) et;
                  Array.unsafe_set in_val (sb + gi)
                    (Array.unsafe_get env_val (Array.unsafe_get gregs gi));
                  changed := true
                end
                else if
                  dt = et
                  && Array.unsafe_get in_val (sb + gi)
                     = Array.unsafe_get env_val (Array.unsafe_get gregs gi)
                then ()
                else begin
                  Array.unsafe_set in_tag (sb + gi) t_any;
                  Array.unsafe_set in_val (sb + gi) 0;
                  changed := true
                end
              done;
            if !changed && not pending.(succ) then begin
              pending.(succ) <- true;
              incr npending
            end)
          (Ir.successors blk.Ir.term)
      end
    done
  done;
  (in_tag, in_val, seen, gregs, ng)

(* Algebraic simplification of a binop with one known-constant operand.
   Returns a replacement instruction, or None to keep the original.  Only
   reached when at most one operand is constant (both-constant folds first),
   so the identity checks cannot overlap. *)
let simplify_binop op d a b ta va tb vb =
  let move s = Some (Ir.Move (d, s)) in
  let const n = Some (Ir.Const (d, n)) in
  let ca = ta = t_const and cb = tb = t_const in
  match op with
  | Ir.Add ->
    if ca && va = 0 then move b else if cb && vb = 0 then move a else None
  | Ir.Sub -> if cb && vb = 0 then move a else None
  | Ir.Mul ->
    if ca && va = 1 then move b
    else if cb && vb = 1 then move a
    else if (ca && va = 0) || (cb && vb = 0) then const 0
    else None
  | Ir.And -> if (ca && va = 0) || (cb && vb = 0) then const 0 else None
  | Ir.Or -> if ca && va = 0 then move b else if cb && vb = 0 then move a else None
  | Ir.Xor -> if ca && va = 0 then move b else if cb && vb = 0 then move a else None
  | Ir.Shl | Ir.Shr -> if cb && vb = 0 then move a else None
  | Ir.Div -> if cb && vb = 1 then move a else None
  | Ir.Mod -> None

type rewrite_stats = { mutable folded : int; mutable devirtualized : int; mutable branches_folded : int }

let rewrite prog m (in_tag, in_val, reached, gregs, ng) =
  let stats = { folded = 0; devirtualized = 0; branches_folded = 0 } in
  let nregs = m.Ir.nregs in
  let env_tag = Array.make nregs 0 in
  let env_val = Array.make nregs 0 in
  let blocks =
    Array.mapi
      (fun bi blk ->
        (* Only the carried (upward-exposed) registers are loaded from the
           block's in-state; every other register's env entry is written by an
           in-block definition before any use reads it, so its stale content
           is unobservable — the same argument that let [analyze] drop them. *)
        if reached.(bi) then begin
          let ib = bi * ng in
          for gi = 0 to ng - 1 do
            let r = gregs.(gi) in
            env_tag.(r) <- in_tag.(ib + gi);
            env_val.(r) <- in_val.(ib + gi)
          done
        end
        else
          (* Never flowed into, so its scratch slice was never written; its
             in-state is all-Undef by definition. *)
          for gi = 0 to ng - 1 do
            env_tag.(gregs.(gi)) <- t_undef
          done;
        let instrs = blk.Ir.instrs in
        (* Copy-on-write: most blocks survive a (second) constprop run
           untouched, and rebuilding every instruction array per compile was
           measurable GC churn on post-inlining methods. *)
        let out = ref instrs in
        for k = 0 to Array.length instrs - 1 do
          let i = instrs.(k) in
          let replacement =
            match i with
            | Ir.Binop (op, d, a, b) ->
              if env_tag.(a) = t_const && env_tag.(b) = t_const then begin
                stats.folded <- stats.folded + 1;
                Some (Ir.Const (d, Ir.eval_binop op env_val.(a) env_val.(b)))
              end
              else begin
                let r =
                  simplify_binop op d a b env_tag.(a) env_val.(a) env_tag.(b) env_val.(b)
                in
                if r <> None then stats.folded <- stats.folded + 1;
                r
              end
            | Ir.Cmp (op, d, a, b) ->
              if env_tag.(a) = t_const && env_tag.(b) = t_const then begin
                stats.folded <- stats.folded + 1;
                Some (Ir.Const (d, Ir.eval_cmp op env_val.(a) env_val.(b)))
              end
              else None
            | Ir.Move (d, s) ->
              if env_tag.(s) = t_const then begin
                stats.folded <- stats.folded + 1;
                Some (Ir.Const (d, env_val.(s)))
              end
              else None
            | Ir.ClassOf (d, o) ->
              if env_tag.(o) = t_obj then begin
                stats.folded <- stats.folded + 1;
                Some (Ir.Const (d, env_val.(o)))
              end
              else None
            | Ir.CallVirt (d, slot, recv, args) ->
              if env_tag.(recv) = t_obj then begin
                let k = prog.Ir.classes.(env_val.(recv)) in
                if slot < Array.length k.Ir.vtable then begin
                  stats.devirtualized <- stats.devirtualized + 1;
                  Some (Ir.Call (d, k.Ir.vtable.(slot), Array.append [| recv |] args))
                end
                else None
              end
              else None
            | _ -> None
          in
          (match replacement with
          | Some i' ->
            if !out == instrs then out := Array.copy instrs;
            (!out).(k) <- i';
            transfer env_tag env_val i'
          | None -> transfer env_tag env_val i)
        done;
        let term =
          match blk.Ir.term with
          | Ir.Branch (c, t, f) ->
            if env_tag.(c) = t_const then begin
              stats.branches_folded <- stats.branches_folded + 1;
              if env_val.(c) = 0 then Ir.Jump f else Ir.Jump t
            end
            else blk.Ir.term
          | t -> t
        in
        if !out == instrs && term == blk.Ir.term then blk
        else { Ir.instrs = !out; term })
      m.Ir.blocks
  in
  ({ m with Ir.blocks }, stats)

(* Dataflow state is O(blocks * registers); on monster methods produced by
   maximally aggressive inlining a real compiler bails to a cheaper strategy,
   and so do we: beyond this budget the method is returned unchanged. *)
let analysis_budget = 2_000_000

let run prog m =
  if Array.length m.Ir.blocks * m.Ir.nregs > analysis_budget then
    (m, { folded = 0; devirtualized = 0; branches_folded = 0 })
  else begin
    let in_states = analyze m in
    rewrite prog m in_states
  end
