open Inltune_jir
(* Method inlining, as thin strategy-free wrappers over the shared
   {!Engine}.  Historically this module owned the whole transformation; the
   splice machinery now lives in [engine.ml] so alternative strategies
   (small-leaf, hot-path, region — see [leaves.ml] / [hotpath.ml] /
   [region.ml]) drive the identical code path through their own policies.
   The public API is unchanged: [run]/[plan] close over the paper's Fig. 3/4
   heuristic procedure, [run_policy]/[plan_policy] accept any first-class
   {!Policy.t}, and [run_custom] wraps a bare decision closure. *)

type stats = Engine.stats = {
  mutable sites_seen : int;
  mutable sites_inlined : int;
  mutable hot_sites_seen : int;
  mutable hot_sites_inlined : int;
}

let fresh_stats = Engine.fresh_stats

type reason = Engine.reason =
  | Rule of Policy.verdict
  | Recursive
  | Space_cap

let reason_accepts = Engine.reason_accepts
let reason_name = Engine.reason_name

type decision = Engine.decision = {
  d_site_owner : Ir.mid;
  d_callee : Ir.mid;
  d_callee_size : int;
  d_depth : int;
  d_caller_size : int;
  d_reason : reason;
}

let decision_accepts = Engine.decision_accepts
let max_expanded_size = Engine.max_expanded_size

let run_policy ?hot_site ?decisions ~program ~policy m =
  Engine.run ?hot_site ?decisions ~program ~policy m

let run ?hot_site ?decisions ~program ~heuristic m =
  Engine.run ?hot_site ?decisions ~program ~policy:(Policy.of_heuristic heuristic) m

let plan_policy ?hot_site ~program ~policy m = Engine.walk ?hot_site ~program ~policy m

let plan ?hot_site ~program ~heuristic m =
  Engine.walk ?hot_site ~program ~policy:(Policy.of_heuristic heuristic) m

let run_custom ?decisions ~decide ~program m =
  Engine.run ?decisions ~program ~policy:(Policy.of_custom decide) m
