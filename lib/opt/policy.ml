open Inltune_jir
(* First-class inlining policies.  The inliner's decision procedure consults
   exactly this interface; the paper's threshold heuristic, the knapsack
   baseline's closure, and the learned policies of lib/policy are all
   implementations of it. *)

type site = {
  owner : Ir.mid;
  callee : Ir.mid;
  callee_size : int;
  inline_depth : int;
  caller_size : int;
  hot : bool;
}

type verdict = {
  accept : bool;
  rule : string;
}

type t = {
  name : string;
  decide : site -> verdict;
}

(* Rule strings reuse the Fig. 3/4 outcome names verbatim so traces written
   before the policy interface existed keep the same vocabulary. *)
let of_heuristic h =
  {
    name = "heuristic";
    decide =
      (fun s ->
        if s.hot then
          let o = Heuristic.evaluate_hot h ~callee_size:s.callee_size in
          { accept = o = Heuristic.Hot_accept; rule = Heuristic.hot_outcome_name o }
        else
          let o =
            Heuristic.evaluate h ~callee_size:s.callee_size ~inline_depth:s.inline_depth
              ~caller_size:s.caller_size
          in
          let accept =
            match o with
            | Heuristic.Always_inline | Heuristic.All_tests_pass -> true
            | Heuristic.Callee_too_big | Heuristic.Depth_exceeded | Heuristic.Caller_too_big
              -> false
          in
          { accept; rule = Heuristic.outcome_name o });
  }

let of_custom f =
  {
    name = "custom";
    decide =
      (fun s ->
        let accept =
          f ~site_owner:s.owner ~callee:s.callee ~callee_size:s.callee_size
            ~inline_depth:s.inline_depth ~caller_size:s.caller_size
        in
        { accept; rule = (if accept then "custom_accept" else "custom_reject") });
  }

(* A pure site predicate lifted to a policy; the caller names the family and
   the two rule strings so traces can tell one predicate source from
   another (the GP's evolved predicates use "gp" / "gp_accept" /
   "gp_reject"). *)
let of_predicate ~name ~accept_rule ~reject_rule f =
  {
    name;
    decide =
      (fun s ->
        let accept = f s in
        { accept; rule = (if accept then accept_rule else reject_rule) });
  }

let always = { name = "always"; decide = (fun _ -> { accept = true; rule = "always" }) }
let never = { name = "never"; decide = (fun _ -> { accept = false; rule = "never" }) }
