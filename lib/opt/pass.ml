open Inltune_jir

(* First-class optimizer passes.  Each pass wraps one transformation from
   this directory behind a uniform interface: a name (the span/Plan
   vocabulary), declared integer knobs, and a [run] returning the rewritten
   method plus a uniform [delta] stats record.

   The [delta] fields mirror the counters [Pipeline.stats] aggregates; each
   pass fills only its own fields, so summing the deltas of a pipeline run
   field-by-field reproduces the pipeline totals exactly — the invariant the
   plan interpreter is built on (and tests assert). *)

type knob = {
  k_name : string;
  k_lo : int;
  k_hi : int;  (* inclusive *)
  k_default : int;
}

type delta = {
  d_sites_seen : int;
  d_sites_inlined : int;
  d_hot_sites_seen : int;
  d_hot_sites_inlined : int;
  d_sites_guarded : int;
  d_folded : int;
  d_devirtualized : int;
  d_branches_folded : int;
  d_cse_replaced : int;
  d_copies_propagated : int;
  d_dce_removed : int;
}

let zero_delta =
  {
    d_sites_seen = 0;
    d_sites_inlined = 0;
    d_hot_sites_seen = 0;
    d_hot_sites_inlined = 0;
    d_sites_guarded = 0;
    d_folded = 0;
    d_devirtualized = 0;
    d_branches_folded = 0;
    d_cse_replaced = 0;
    d_copies_propagated = 0;
    d_dce_removed = 0;
  }

let add_delta a b =
  {
    d_sites_seen = a.d_sites_seen + b.d_sites_seen;
    d_sites_inlined = a.d_sites_inlined + b.d_sites_inlined;
    d_hot_sites_seen = a.d_hot_sites_seen + b.d_hot_sites_seen;
    d_hot_sites_inlined = a.d_hot_sites_inlined + b.d_hot_sites_inlined;
    d_sites_guarded = a.d_sites_guarded + b.d_sites_guarded;
    d_folded = a.d_folded + b.d_folded;
    d_devirtualized = a.d_devirtualized + b.d_devirtualized;
    d_branches_folded = a.d_branches_folded + b.d_branches_folded;
    d_cse_replaced = a.d_cse_replaced + b.d_cse_replaced;
    d_copies_propagated = a.d_copies_propagated + b.d_copies_propagated;
    d_dce_removed = a.d_dce_removed + b.d_dce_removed;
  }

(* Each pass touches a disjoint subset of the fields, so this total is that
   pass's own transform count — the number the per-pass trace spans report. *)
let transforms d =
  d.d_sites_inlined + d.d_sites_guarded + d.d_folded + d.d_devirtualized
  + d.d_branches_folded + d.d_cse_replaced + d.d_copies_propagated + d.d_dce_removed

type ctx = {
  decider : Decider.t;
  hot_site : (site_owner:Ir.mid -> callee:Ir.mid -> bool) option;
  devirt_oracle : Guarded_devirt.site_oracle option;
  profile : Hotpath.view option;
      (* adaptive scenario: live call-edge counts for the hot-path strategy *)
}

type t = {
  name : string;
  knobs : knob list;
  applicable : ctx -> bool;
      (* structurally skipped (no run, no span) when false — e.g. guarded
         devirtualization without a profile oracle *)
  run : Ir.program -> ctx -> knob:(string -> int) -> Ir.methd -> Ir.methd * delta;
      (* [knob] resolves this instance's declared knobs (plan value or
         declared default); "iters" is interpreted by the pipeline, every
         other knob by the pass itself *)
  static_policy : ((string -> int) -> Ir.program -> Ir.methd -> Policy.t) option;
      (* for inliner passes whose decisions read nothing but the program
         and the site record: rebuild the exact per-method policy from a
         knob lookup, so Fitcache can walk it (see fitcache.ml) *)
}

let always_applicable _ = true

let guarded_devirt =
  {
    name = "guarded_devirt";
    knobs = [];
    applicable = (fun ctx -> ctx.devirt_oracle <> None);
    run =
      (fun program ctx ~knob:_ m ->
        match ctx.devirt_oracle with
        | None -> (m, zero_delta)
        | Some oracle ->
          let m, s = Guarded_devirt.run ~program ~oracle m in
          (m, { zero_delta with d_sites_guarded = s.Guarded_devirt.sites_guarded }));
    static_policy = None;
  }

let iters_knob = { k_name = "iters"; k_lo = 1; k_hi = 3; k_default = 1 }

let constprop =
  {
    name = "constprop";
    knobs = [ iters_knob ];
    applicable = always_applicable;
    run =
      (fun program _ ~knob:_ m ->
        let m, s = Constprop.run program m in
        ( m,
          {
            zero_delta with
            d_folded = s.Constprop.folded;
            d_devirtualized = s.Constprop.devirtualized;
            d_branches_folded = s.Constprop.branches_folded;
          } ));
    static_policy = None;
  }

let inline_delta (s : Engine.stats) =
  {
    zero_delta with
    d_sites_seen = s.Engine.sites_seen;
    d_sites_inlined = s.Engine.sites_inlined;
    d_hot_sites_seen = s.Engine.hot_sites_seen;
    d_hot_sites_inlined = s.Engine.hot_sites_inlined;
  }

let inline =
  {
    name = "inline";
    knobs = [];
    applicable = always_applicable;
    run =
      (fun program ctx ~knob:_ m ->
        let m, s =
          match ctx.decider with
          | Decider.Custom decide -> Inline.run_custom ~decide ~program m
          | Decider.Policy policy ->
            Inline.run_policy ?hot_site:ctx.hot_site ~program ~policy m
          | Decider.Heuristic heuristic ->
            Inline.run ?hot_site:ctx.hot_site ~program ~heuristic m
        in
        (m, inline_delta s));
    static_policy = None;
  }

(* --- alternative inlining strategies ------------------------------------ *)

(* Each strategy is its own engine run under its own policy; they ignore the
   decider entirely, so their decisions are heuristic-independent — the
   property Fitcache's signature soundness arguments lean on. *)

let inline_leaves =
  let policy knob program _m =
    Leaves.policy ~leaf_size:(knob "leaf_size") ~rounds:(knob "rounds") program
  in
  {
    name = "inline_leaves";
    knobs =
      [
        { k_name = "leaf_size"; k_lo = 1; k_hi = 60; k_default = 12 };
        { k_name = "rounds"; k_lo = 1; k_hi = 5; k_default = 2 };
      ];
    applicable = always_applicable;
    run =
      (fun program _ ~knob m ->
        let m, s = Engine.run ~program ~policy:(policy knob program m) m in
        (m, inline_delta s));
    static_policy = Some policy;
  }

let inline_hot =
  {
    name = "inline_hot";
    knobs =
      [
        { k_name = "hot_permille"; k_lo = 1; k_hi = 500; k_default = 50 };
        { k_name = "budget"; k_lo = 16; k_hi = 4096; k_default = 512 };
      ];
    (* No profile, no hot paths: structurally skipped under [Opt]. *)
    applicable = (fun ctx -> ctx.profile <> None);
    run =
      (fun program ctx ~knob m ->
        match ctx.profile with
        | None -> (m, zero_delta)
        | Some view ->
          let policy =
            Hotpath.policy ~hot_permille:(knob "hot_permille") ~budget:(knob "budget") view m
          in
          let m, s = Engine.run ~program ~policy m in
          (m, inline_delta s));
    static_policy = None;
  }

let inline_region =
  let policy knob _program m =
    Region.policy ~budget:(knob "budget") ~depth:(knob "depth") m
  in
  {
    name = "inline_region";
    knobs =
      [
        { k_name = "budget"; k_lo = 16; k_hi = 4096; k_default = 512 };
        { k_name = "depth"; k_lo = 1; k_hi = 12; k_default = 6 };
      ];
    applicable = always_applicable;
    run =
      (fun program _ ~knob m ->
        let m, s = Engine.run ~program ~policy:(policy knob program m) m in
        (m, inline_delta s));
    static_policy = Some policy;
  }

let cse =
  {
    name = "cse";
    knobs = [ iters_knob ];
    applicable = always_applicable;
    run =
      (fun _ _ ~knob:_ m ->
        let m, n = Cse.run m in
        (m, { zero_delta with d_cse_replaced = n }));
    static_policy = None;
  }

let copyprop =
  {
    name = "copyprop";
    knobs = [ iters_knob ];
    applicable = always_applicable;
    run =
      (fun _ _ ~knob:_ m ->
        let m, n = Copyprop.run m in
        (m, { zero_delta with d_copies_propagated = n }));
    static_policy = None;
  }

let dce =
  {
    name = "dce";
    knobs = [ iters_knob ];
    applicable = always_applicable;
    run =
      (fun _ _ ~knob:_ m ->
        let m, n = Dce.run m in
        (m, { zero_delta with d_dce_removed = n }));
    static_policy = None;
  }

let cleanup =
  {
    name = "cleanup";
    knobs = [];
    applicable = always_applicable;
    run = (fun _ _ ~knob:_ m -> (Cleanup.run m, zero_delta));
    static_policy = None;
  }

let all =
  [
    guarded_devirt; constprop; inline_leaves; inline_hot; inline; inline_region; cse;
    copyprop; dce; cleanup;
  ]

(* The passes that drive the inline engine: the set the pipeline's
   [size_peak] trajectory and Fitcache's plan-shape analysis key off. *)
let inliner_names = [ "inline_leaves"; "inline_hot"; "inline"; "inline_region" ]
let is_inliner_name name = List.mem name inliner_names

let find name = List.find_opt (fun p -> p.name = name) all
let find_knob p name = List.find_opt (fun k -> k.k_name = name) p.knobs
