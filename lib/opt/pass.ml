open Inltune_jir

(* First-class optimizer passes.  Each pass wraps one transformation from
   this directory behind a uniform interface: a name (the span/Plan
   vocabulary), declared integer knobs, and a [run] returning the rewritten
   method plus a uniform [delta] stats record.

   The [delta] fields mirror the counters [Pipeline.stats] aggregates; each
   pass fills only its own fields, so summing the deltas of a pipeline run
   field-by-field reproduces the pipeline totals exactly — the invariant the
   plan interpreter is built on (and tests assert). *)

type knob = {
  k_name : string;
  k_lo : int;
  k_hi : int;  (* inclusive *)
  k_default : int;
}

type delta = {
  d_sites_seen : int;
  d_sites_inlined : int;
  d_hot_sites_seen : int;
  d_hot_sites_inlined : int;
  d_sites_guarded : int;
  d_folded : int;
  d_devirtualized : int;
  d_branches_folded : int;
  d_cse_replaced : int;
  d_copies_propagated : int;
  d_dce_removed : int;
}

let zero_delta =
  {
    d_sites_seen = 0;
    d_sites_inlined = 0;
    d_hot_sites_seen = 0;
    d_hot_sites_inlined = 0;
    d_sites_guarded = 0;
    d_folded = 0;
    d_devirtualized = 0;
    d_branches_folded = 0;
    d_cse_replaced = 0;
    d_copies_propagated = 0;
    d_dce_removed = 0;
  }

let add_delta a b =
  {
    d_sites_seen = a.d_sites_seen + b.d_sites_seen;
    d_sites_inlined = a.d_sites_inlined + b.d_sites_inlined;
    d_hot_sites_seen = a.d_hot_sites_seen + b.d_hot_sites_seen;
    d_hot_sites_inlined = a.d_hot_sites_inlined + b.d_hot_sites_inlined;
    d_sites_guarded = a.d_sites_guarded + b.d_sites_guarded;
    d_folded = a.d_folded + b.d_folded;
    d_devirtualized = a.d_devirtualized + b.d_devirtualized;
    d_branches_folded = a.d_branches_folded + b.d_branches_folded;
    d_cse_replaced = a.d_cse_replaced + b.d_cse_replaced;
    d_copies_propagated = a.d_copies_propagated + b.d_copies_propagated;
    d_dce_removed = a.d_dce_removed + b.d_dce_removed;
  }

(* Each pass touches a disjoint subset of the fields, so this total is that
   pass's own transform count — the number the per-pass trace spans report. *)
let transforms d =
  d.d_sites_inlined + d.d_sites_guarded + d.d_folded + d.d_devirtualized
  + d.d_branches_folded + d.d_cse_replaced + d.d_copies_propagated + d.d_dce_removed

type ctx = {
  decider : Decider.t;
  hot_site : (site_owner:Ir.mid -> callee:Ir.mid -> bool) option;
  devirt_oracle : Guarded_devirt.site_oracle option;
}

type t = {
  name : string;
  knobs : knob list;
  applicable : ctx -> bool;
      (* structurally skipped (no run, no span) when false — e.g. guarded
         devirtualization without a profile oracle *)
  run : Ir.program -> ctx -> Ir.methd -> Ir.methd * delta;
}

let always_applicable _ = true

let guarded_devirt =
  {
    name = "guarded_devirt";
    knobs = [];
    applicable = (fun ctx -> ctx.devirt_oracle <> None);
    run =
      (fun program ctx m ->
        match ctx.devirt_oracle with
        | None -> (m, zero_delta)
        | Some oracle ->
          let m, s = Guarded_devirt.run ~program ~oracle m in
          (m, { zero_delta with d_sites_guarded = s.Guarded_devirt.sites_guarded }));
  }

let iters_knob = { k_name = "iters"; k_lo = 1; k_hi = 3; k_default = 1 }

let constprop =
  {
    name = "constprop";
    knobs = [ iters_knob ];
    applicable = always_applicable;
    run =
      (fun program _ m ->
        let m, s = Constprop.run program m in
        ( m,
          {
            zero_delta with
            d_folded = s.Constprop.folded;
            d_devirtualized = s.Constprop.devirtualized;
            d_branches_folded = s.Constprop.branches_folded;
          } ));
  }

let inline =
  {
    name = "inline";
    knobs = [];
    applicable = always_applicable;
    run =
      (fun program ctx m ->
        let m, s =
          match ctx.decider with
          | Decider.Custom decide -> Inline.run_custom ~decide ~program m
          | Decider.Policy policy ->
            Inline.run_policy ?hot_site:ctx.hot_site ~program ~policy m
          | Decider.Heuristic heuristic ->
            Inline.run ?hot_site:ctx.hot_site ~program ~heuristic m
        in
        ( m,
          {
            zero_delta with
            d_sites_seen = s.Inline.sites_seen;
            d_sites_inlined = s.Inline.sites_inlined;
            d_hot_sites_seen = s.Inline.hot_sites_seen;
            d_hot_sites_inlined = s.Inline.hot_sites_inlined;
          } ));
  }

let cse =
  {
    name = "cse";
    knobs = [ iters_knob ];
    applicable = always_applicable;
    run =
      (fun _ _ m ->
        let m, n = Cse.run m in
        (m, { zero_delta with d_cse_replaced = n }));
  }

let copyprop =
  {
    name = "copyprop";
    knobs = [ iters_knob ];
    applicable = always_applicable;
    run =
      (fun _ _ m ->
        let m, n = Copyprop.run m in
        (m, { zero_delta with d_copies_propagated = n }));
  }

let dce =
  {
    name = "dce";
    knobs = [ iters_knob ];
    applicable = always_applicable;
    run =
      (fun _ _ m ->
        let m, n = Dce.run m in
        (m, { zero_delta with d_dce_removed = n }));
  }

let cleanup =
  {
    name = "cleanup";
    knobs = [];
    applicable = always_applicable;
    run = (fun _ _ m -> (Cleanup.run m, zero_delta));
  }

let all = [ guarded_devirt; constprop; inline; cse; copyprop; dce; cleanup ]

let find name = List.find_opt (fun p -> p.name = name) all
let find_knob p name = List.find_opt (fun k -> k.k_name = name) p.knobs
