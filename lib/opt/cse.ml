open Inltune_jir

(* Block-local common-subexpression elimination by value numbering over
   pure operators.  After inlining, the merged body frequently recomputes
   the same subexpression (the callee and caller both computed it), so CSE
   is another slice of inlining's indirect benefit.

   Available expressions are tracked per block as a map from an operator
   signature over *current* value numbers to the register holding the
   result.  Loads are not value-numbered (stores and calls would have to
   invalidate them); this pass only touches arithmetic.

   Keys and table entries are packed into immediate ints so the per
   instruction lookup/insert allocates nothing — this pass runs on every
   optimizing compile, and with a constructor key (the previous
   representation) the key allocation plus structural hashing dominated
   its wall time. *)

let commutative = function
  | Ir.Add | Ir.Mul | Ir.And | Ir.Or | Ir.Xor -> true
  | Ir.Sub | Ir.Div | Ir.Mod | Ir.Shl | Ir.Shr -> false

let binop_tag = function
  | Ir.Add -> 0
  | Ir.Sub -> 1
  | Ir.Mul -> 2
  | Ir.Div -> 3
  | Ir.Mod -> 4
  | Ir.And -> 5
  | Ir.Or -> 6
  | Ir.Xor -> 7
  | Ir.Shl -> 8
  | Ir.Shr -> 9

let cmp_tag = function
  | Ir.Lt -> 10
  | Ir.Le -> 11
  | Ir.Eq -> 12
  | Ir.Ne -> 13
  | Ir.Gt -> 14
  | Ir.Ge -> 15

let run m =
  let nregs = m.Ir.nregs in
  let replaced = ref 0 in
  (* vns.(r) = the value number currently held by register r, valid only
     when stamp.(r) is the current block's epoch; otherwise r holds its
     initial value number -r - 1.  Epoch stamping makes entering a block
     O(1) in nregs instead of re-initializing an nregs-sized array. *)
  let vns = Array.make nregs 0 in
  let stamp = Array.make nregs 0 in
  let epoch = ref 0 in
  (* Fresh value numbers are unique across the whole method (the counter is
     not reset per block), which is what lets one hash table serve every
     block without clearing: a stale entry (r, v) from an earlier block can
     never validate, because in the current block [vn r] is either r's
     initial negative number or a number minted after v — never v itself
     (copies only propagate numbers already live in this block).  Entry
     validity is still decided per lookup by the [vn r = v] check, exactly
     as before, so the shared table changes no decision. *)
  let next_vn = ref 0 in
  (* Value numbers live in [-nregs .. #defs]; biasing by nregs makes them
     non-negative so two of them pack into one int key next to the operator
     tag: tag(6 bits) | va(28) | vb(28), within the 63-bit int.  Methods
     stay far under 2^28 value numbers (the pipeline's growth budget caps
     body sizes), so the packing is never ambiguous.  Constants keep their
     own table because a program constant can be any int.  Entries pack
     (register, value number at insert) the same way. *)
  let bias = nregs in
  let pack_entry r v = ((v + bias) lsl 28) lor r in
  let table : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let const_table : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let blocks =
    Array.map
      (fun blk ->
        incr epoch;
        let e = !epoch in
        let vn r = if stamp.(r) = e then vns.(r) else -r - 1 in
        let set_vn r v =
          stamp.(r) <- e;
          vns.(r) <- v
        in
        let fresh_vn r =
          incr next_vn;
          set_vn r !next_vn
        in
        (* key -> (register holding the value, its value number at insert).
           When a register is redefined, stale entries pointing at it must not
           be reused: we key the check on value numbers, so it is enough to
           verify that the memoized register still holds the value number it
           had when inserted. *)
        let lookup tbl key =
          match Hashtbl.find_opt tbl key with
          | Some packed ->
            let r = packed land 0xFFFFFFF in
            let v = (packed lsr 28) - bias in
            if vn r = v then r else -1
          | None -> -1
        in
        let remember tbl key r = Hashtbl.replace tbl key (pack_entry r (vn r)) in
        (* Copy-on-write on the block's instruction array: blocks with no
           repeated subexpression (the common case) are returned as-is. *)
        let instrs0 = blk.Ir.instrs in
        let out = ref instrs0 in
        let replace k i' =
          if !out == instrs0 then out := Array.copy instrs0;
          (!out).(k) <- i'
        in
        Array.iteri
          (fun k i ->
            match i with
            | Ir.Binop (op, d, a, b) ->
              let va, vb =
                let na = vn a and nb = vn b in
                if commutative op && na > nb then (nb, na) else (na, nb)
              in
              let key = (binop_tag op lsl 56) lor ((va + bias) lsl 28) lor (vb + bias) in
              let r = lookup table key in
              if r >= 0 then begin
                incr replaced;
                set_vn d (vn r);
                replace k (Ir.Move (d, r))
              end
              else begin
                fresh_vn d;
                remember table key d
              end
            | Ir.Cmp (op, d, a, b) ->
              let key =
                (cmp_tag op lsl 56) lor ((vn a + bias) lsl 28) lor (vn b + bias)
              in
              let r = lookup table key in
              if r >= 0 then begin
                incr replaced;
                set_vn d (vn r);
                replace k (Ir.Move (d, r))
              end
              else begin
                fresh_vn d;
                remember table key d
              end
            | Ir.Const (d, v) ->
              let r = lookup const_table v in
              if r >= 0 then begin
                incr replaced;
                set_vn d (vn r);
                replace k (Ir.Move (d, r))
              end
              else begin
                fresh_vn d;
                remember const_table v d
              end
            | Ir.Move (d, s) -> set_vn d (vn s)
            | _ ->
              let d = Ir.def_reg i in
              if d >= 0 then fresh_vn d)
          instrs0;
        if !out == instrs0 then blk else { blk with Ir.instrs = !out })
      m.Ir.blocks
  in
  ({ m with Ir.blocks }, !replaced)
