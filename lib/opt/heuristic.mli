(** Jikes RVM's five-parameter inlining heuristic (paper Figs. 3–4, Table 1).

    This record is the object being tuned: the GA searches over its five
    integer fields within the Table 1 ranges. *)

type t = {
  callee_max_size : int;      (** max estimated callee size to inline *)
  always_inline_size : int;   (** callees below this are always inlined *)
  max_inline_depth : int;     (** max inlining depth at a call site *)
  caller_max_size : int;      (** max expanded caller size to inline into *)
  hot_callee_max_size : int;  (** max hot-callee size (adaptive scenario) *)
}

(** Jikes RVM's shipped values: 23 / 11 / 5 / 2048 / 135. *)
val default : t

(** Refuses every inlining opportunity (the "no inlining" baseline). *)
val never : t

(** Which Fig. 3 test fired for a call site.  Test order is part of the
    heuristic's semantics; the outcome names exactly which test decided, which
    is the vocabulary trace events and summaries use for accept/reject
    reasons. *)
type outcome =
  | Callee_too_big   (** reject: size > CALLEE_MAX_SIZE *)
  | Always_inline    (** accept: size < ALWAYS_INLINE_SIZE *)
  | Depth_exceeded   (** reject: depth > MAX_INLINE_DEPTH *)
  | Caller_too_big   (** reject: expanded caller > CALLER_MAX_SIZE *)
  | All_tests_pass   (** accept: survived every test *)

val outcome_name : outcome -> string

(** The Fig. 3 test sequence, reporting which test decided. *)
val evaluate : t -> callee_size:int -> inline_depth:int -> caller_size:int -> outcome

(** The optimizing compiler's decision (paper Fig. 3).  [inline_depth] is the
    depth of the call chain at this site (direct calls in the method being
    compiled have depth 1). *)
val consider : t -> callee_size:int -> inline_depth:int -> caller_size:int -> bool

(** Outcome of the single Fig. 4 hot-call-site test. *)
type hot_outcome = Hot_accept | Hot_callee_too_big

val hot_outcome_name : hot_outcome -> string

val evaluate_hot : t -> callee_size:int -> hot_outcome

(** The hot-call-site decision (paper Fig. 4), adaptive scenario only. *)
val consider_hot : t -> callee_size:int -> bool

(** Genome encoding: the five parameters in Table 1 order. *)
val to_array : t -> int array

(** Inverse of {!to_array} for in-range genes; raises on wrong length and
    clamps each gene into its Table 1 range, so a corrupt checkpoint or
    hand-written genome cannot produce an out-of-range heuristic. *)
val of_array : int array -> t

val equal : t -> t -> bool
val to_string : t -> string

(** Parameter names in Table 1 order. *)
val param_names : string array

(** Search ranges from paper Table 1, in the same order. *)
val ranges : (int * int) array

(** Clamp a genome into the Table 1 ranges. *)
val clamp_to_ranges : int array -> int array

(** Convenience for the Fig. 2 depth sweep. *)
val with_depth : t -> int -> t
