open Inltune_jir
(* Small-leaf inliner strategy (flrc-style iterate-to-fixpoint).

   Round 1 of the classical formulation inlines every call to a *leaf* —
   a method containing no calls at all — whose body is small; round 2
   inlines calls to methods that became leaves once round 1 expanded their
   callees; and so on to a round cap.  Driving the recursive {!Engine}
   there is no literal re-iteration: a method's **leaf level** (0 = no
   calls; k = every static callee has level < k) tells exactly which round
   would have picked it up, so the fixpoint collapses into one engine run
   that accepts a site iff the callee's level is below the round cap and
   its body is within the size budget.  Nested sites inside an accepted
   splice get their own decisions, which is precisely what the iterated
   formulation would do.

   Methods on a call cycle, and methods containing virtual calls (their
   callees are unknown statically), never become leaves at any level.

   The decision reads nothing but the program text and the site record, so
   the strategy is *static*: {!Engine.walk} over its policy reproduces the
   exact compile-time verdict sequence, which Fitcache uses for exact
   decision signatures. *)

(* Level assigned to methods that never become leaves (cycles, virtual
   calls): above any reachable round cap. *)
let never_leaf = max_int

(* Leaf levels for every method, by memoized DFS over static call edges.
   [-1] = unvisited, [-2] = on the current DFS stack; seeing a [-2] callee
   means the edge closes a call cycle, which poisons every method on it. *)
let compute_levels program =
  let n = Array.length program.Ir.methods in
  let lv = Array.make n (-1) in
  let rec level mid =
    if lv.(mid) >= 0 then lv.(mid)
    else if lv.(mid) = -2 then never_leaf
    else begin
      lv.(mid) <- -2;
      let l = ref 0 in
      Array.iter
        (fun blk ->
          Array.iter
            (fun i ->
              match i with
              | Ir.Call (_, callee, _) ->
                let cl = level callee in
                if cl = never_leaf || !l = never_leaf then l := never_leaf
                else l := max !l (cl + 1)
              | Ir.CallVirt _ -> l := never_leaf
              | _ -> ())
            blk.Ir.instrs)
        program.Ir.methods.(mid).Ir.blocks;
      lv.(mid) <- !l;
      !l
    end
  in
  for mid = 0 to n - 1 do
    ignore (level mid)
  done;
  lv

(* One-entry level cache keyed by physical program identity: the pipeline
   constructs a policy per method compile, and [Suites.program] shares one
   immutable program value per benchmark, so recomputation would be pure
   waste.  Guarded for the parallel tuners ([Pool] domains). *)
let mu = Mutex.create ()
let cache : (Ir.program * int array) option ref = ref None

let levels program =
  Mutex.lock mu;
  let lv =
    match !cache with
    | Some (p, lv) when p == program -> lv
    | _ ->
      let lv = compute_levels program in
      cache := Some (program, lv);
      lv
  in
  Mutex.unlock mu;
  lv

(* [policy ~leaf_size ~rounds program] accepts a site iff the callee would
   be selected within [rounds] fixpoint rounds and fits the size budget. *)
let policy ~leaf_size ~rounds program =
  let lv = levels program in
  Policy.of_predicate
    ~name:(Printf.sprintf "leaves(leaf_size=%d,rounds=%d)" leaf_size rounds)
    ~accept_rule:"small_leaf" ~reject_rule:"not_small_leaf" (fun s ->
      lv.(s.Policy.callee) < rounds && s.Policy.callee_size <= leaf_size)
