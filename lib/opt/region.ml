open Inltune_jir
(* Region/depth-budget inliner strategy (after Way & Pollock's demand-driven
   region-based inlining).

   Instead of judging each callee in isolation, the strategy grows an
   *inlined region* rooted at the method being compiled: call chains are
   expanded greedily in the engine's depth-first site order for as long as
   the region's total expansion stays within a per-root budget and the
   chain stays within a depth cap.  The budget is charged against
   [caller_size - root_size] — exactly the expansion the engine has already
   committed to — so a big root method gets the same headroom as a small
   one, unlike the Fig. 3 CALLER_MAX_SIZE test which charges the root's own
   size against the limit.

   The decision reads nothing but the site record and the root's static
   size, so the strategy is *static*: {!Engine.walk} over its policy
   reproduces the exact compile-time verdict sequence (Fitcache exactness). *)

(* [policy ~budget ~depth root] accepts a site iff the inline chain is
   within [depth] and expanding the callee keeps the region within
   [budget] size-estimate units of growth over the root method [root]. *)
let policy ~budget ~depth root =
  let root_size = Size.of_method root in
  Policy.of_predicate
    ~name:(Printf.sprintf "region(budget=%d,depth=%d)" budget depth)
    ~accept_rule:"in_region" ~reject_rule:"region_full" (fun s ->
      s.Policy.inline_depth <= depth
      && s.Policy.caller_size - root_size + s.Policy.callee_size <= budget)
