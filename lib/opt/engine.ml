open Inltune_jir
(* The shared inline engine: the transformation machinery every inlining
   strategy drives through a first-class {!Policy.t}.

   The splice mirrors what Jikes RVM's optimizing compiler does at
   bytecode-inline time:
   - decisions use the *static* size estimate of the callee's original body,
     the current depth of the inline chain, and the *expanded* size of the
     caller so far (the caller grows as we inline);
   - hot call sites (adaptive scenario, identified by the profile-supplied
     [hot_site] predicate) have their {!Policy.site.hot} flag set — what a
     policy does with it is the policy's business;
   - nested calls inside an inlined body are considered at depth + 1;
   - a method already on the current inline chain is never inlined again
     (recursion guard — Jikes similarly refuses recursive expansion), and a
     hard [max_expanded_size] cap stops pathological growth that a policy's
     own caller-size test would permit.

   Mechanically: output blocks are allocated so the caller's original labels
   are preserved (block i of the input is block i of the output); a call being
   inlined terminates the current output block with a jump to the copied
   callee entry, callee returns become a move to the call's destination plus a
   jump to a fresh continuation block, and filling resumes there.

   [walk] is the decision-procedure-only twin of [run]: it visits call sites
   in exactly the order [run] decides them and records the effective accept
   bits without building any IR — the semantic cache key Fitcache relies on. *)

module Vec = Inltune_support.Vec
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event

type stats = {
  mutable sites_seen : int;
  mutable sites_inlined : int;
  mutable hot_sites_seen : int;
  mutable hot_sites_inlined : int;
}

let fresh_stats () =
  { sites_seen = 0; sites_inlined = 0; hot_sites_seen = 0; hot_sites_inlined = 0 }

(* Why a call site was (not) inlined: the policy rule that fired, or one of
   the transformation's own guards.  One of these is attached to every
   decision record / "inline.decision" trace event. *)
type reason =
  | Rule of Policy.verdict  (* whatever rule the policy reported *)
  | Recursive               (* callee already on the inline chain *)
  | Space_cap               (* policy said yes, max_expanded_size said no *)

let reason_accepts = function
  | Rule v -> v.Policy.accept
  | Recursive | Space_cap -> false

let reason_name = function
  | Rule v -> v.Policy.rule
  | Recursive -> "recursive"
  | Space_cap -> "space_cap"

(* One record per call site the inliner looked at. *)
type decision = {
  d_site_owner : Ir.mid;
  d_callee : Ir.mid;
  d_callee_size : int;
  d_depth : int;
  d_caller_size : int;
  d_reason : reason;
}

let decision_accepts d = reason_accepts d.d_reason

(* Absolute growth cap, in size-estimate units.  Twice CALLER_MAX_SIZE's
   upper range: a policy's own caller test normally stops expansion first;
   this is the code-space sanity net (Jikes has an equivalent absolute
   limit), and it also bounds the register pressure downstream dataflow
   passes must tolerate. *)
let max_expanded_size = 8_000

type out_block = {
  oi : Ir.instr Vec.t;
  mutable oterm : Ir.terminator option;
}

type ctx = {
  prog : Ir.program;
  policy : Policy.t;
  hot_site : (site_owner:Ir.mid -> callee:Ir.mid -> bool) option;
      (* adaptive scenario: which sites are profile-hot; the flag is passed
         to the policy (the heuristic policy takes the Fig. 4 path on it) *)
  callee_size : Ir.mid -> int;  (* cached static size estimates *)
  out : out_block Vec.t;
  mutable nregs : int;
  mutable size : int;      (* expanded caller size so far *)
  mutable cur : int;       (* output block being filled *)
  stats : stats;
  log : decision Vec.t option;  (* per-site decision records, when requested *)
  trace_on : bool;              (* Trace.enabled at run start *)
}

(* Record/emit a per-site decision.  Only called when the caller verified
   [ctx.log <> None || ctx.trace_on], keeping the common path allocation-free. *)
let note_decision ctx ~site_owner ~callee ~callee_size ~depth reason =
  let d =
    {
      d_site_owner = site_owner;
      d_callee = callee;
      d_callee_size = callee_size;
      d_depth = depth;
      d_caller_size = ctx.size;
      d_reason = reason;
    }
  in
  (match ctx.log with Some v -> Vec.push v d | None -> ());
  if ctx.trace_on then
    Trace.emit "inline.decision"
      ~fields:
        [
          ("owner", Event.Str ctx.prog.Ir.methods.(site_owner).Ir.mname);
          ("callee", Event.Str ctx.prog.Ir.methods.(callee).Ir.mname);
          ("callee_size", Event.Int callee_size);
          ("depth", Event.Int depth);
          ("caller_size", Event.Int ctx.size);
          ("accept", Event.Bool (reason_accepts reason));
          ("reason", Event.Str (reason_name reason));
        ]

let new_block ctx =
  Vec.push ctx.out { oi = Vec.create (); oterm = None };
  Vec.length ctx.out - 1

let push ctx i = Vec.push (Vec.get ctx.out ctx.cur).oi i

let terminate ctx t =
  let b = Vec.get ctx.out ctx.cur in
  assert (b.oterm = None);
  b.oterm <- Some t

(* Decide one call site; returns the reason (which implies accept/reject),
   the callee's cached size estimate, and whether the site was hot. *)
let decide ctx ~site_owner ~callee ~depth =
  let callee_size = ctx.callee_size callee in
  ctx.stats.sites_seen <- ctx.stats.sites_seen + 1;
  let hot = match ctx.hot_site with Some f -> f ~site_owner ~callee | None -> false in
  if hot then ctx.stats.hot_sites_seen <- ctx.stats.hot_sites_seen + 1;
  let verdict =
    ctx.policy.Policy.decide
      {
        Policy.owner = site_owner;
        callee;
        callee_size;
        inline_depth = depth;
        caller_size = ctx.size;
        hot;
      }
  in
  let reason =
    if verdict.Policy.accept && ctx.size + callee_size > max_expanded_size then Space_cap
    else Rule verdict
  in
  (reason, callee_size, hot)

(* Copy [body]'s blocks into the output with registers shifted by [base] and
   labels mapped through [label_map]; recursively processes nested calls.
   [chain] is the set of method ids on the current inline chain. *)
let rec splice ctx ~owner ~depth ~chain ~dst body =
  let base = ctx.nregs in
  ctx.nregs <- ctx.nregs + body.Ir.nregs;
  ctx.size <- ctx.size + ctx.callee_size body.Ir.mid;
  let nblocks = Array.length body.Ir.blocks in
  let label_map = Array.init nblocks (fun _ -> new_block ctx) in
  let cont = new_block ctx in
  terminate ctx (Ir.Jump label_map.(0));
  let remap r = r + base in
  fill_blocks ctx ~owner ~depth ~chain ~remap ~label_map
    ~on_ret:(fun r ->
      push ctx (Ir.Move (dst, r));
      terminate ctx (Ir.Jump cont))
    body.Ir.blocks;
  ctx.cur <- cont;
  base

and fill_blocks ctx ~owner ~depth ~chain ~remap ~label_map ~on_ret blocks =
  Array.iteri
    (fun bi blk ->
      ctx.cur <- label_map.(bi);
      Array.iter (fun i -> emit_instr ctx ~owner ~depth ~chain ~remap i) blk.Ir.instrs;
      match blk.Ir.term with
      | Ir.Jump l -> terminate ctx (Ir.Jump label_map.(l))
      | Ir.Branch (c, t, f) -> terminate ctx (Ir.Branch (remap c, label_map.(t), label_map.(f)))
      | Ir.Ret r -> on_ret (remap r))
    blocks

and emit_instr ctx ~owner ~depth ~chain ~remap i =
  match i with
  | Ir.Call (dst, callee, args) ->
    let dst = remap dst and args = Array.map remap args in
    let observing = ctx.trace_on || ctx.log <> None in
    if List.mem callee chain then begin
      (* Recursion guard.  Not counted in [sites_seen] (the policy never
         saw the site), but still recorded when observing. *)
      if observing then
        note_decision ctx ~site_owner:owner ~callee ~callee_size:(ctx.callee_size callee)
          ~depth:(depth + 1) Recursive;
      push ctx (Ir.Call (dst, callee, args))
    end
    else begin
      let reason, callee_size, hot = decide ctx ~site_owner:owner ~callee ~depth:(depth + 1) in
      if observing then
        note_decision ctx ~site_owner:owner ~callee ~callee_size ~depth:(depth + 1) reason;
      if reason_accepts reason then begin
        ctx.stats.sites_inlined <- ctx.stats.sites_inlined + 1;
        if hot then ctx.stats.hot_sites_inlined <- ctx.stats.hot_sites_inlined + 1;
        let body = ctx.prog.Ir.methods.(callee) in
        (* Bind formal parameters: callee registers 0..nargs-1 live at
           [base..base+nargs-1] after the shift performed by [splice]. *)
        let base_preview = ctx.nregs in
        Array.iteri (fun k a -> push ctx (Ir.Move (base_preview + k, a))) args;
        let base = splice ctx ~owner:callee ~depth:(depth + 1) ~chain:(callee :: chain) ~dst body in
        assert (base = base_preview)
      end
      else push ctx (Ir.Call (dst, callee, args))
    end
  | Ir.CallVirt (dst, slot, recv, args) ->
    (* Virtual sites are never inlined directly; devirtualization (constant
       propagation proving the receiver class) turns them into static calls
       before inlining runs. *)
    push ctx (Ir.CallVirt (remap dst, slot, remap recv, Array.map remap args))
  | Ir.Const (d, n) -> push ctx (Ir.Const (remap d, n))
  | Ir.Move (d, s) -> push ctx (Ir.Move (remap d, remap s))
  | Ir.Binop (op, d, a, b) -> push ctx (Ir.Binop (op, remap d, remap a, remap b))
  | Ir.Cmp (op, d, a, b) -> push ctx (Ir.Cmp (op, remap d, remap a, remap b))
  | Ir.Load (d, o, off) -> push ctx (Ir.Load (remap d, remap o, off))
  | Ir.Store (o, off, s) -> push ctx (Ir.Store (remap o, off, remap s))
  | Ir.LoadIdx (d, o, i2) -> push ctx (Ir.LoadIdx (remap d, remap o, remap i2))
  | Ir.StoreIdx (o, i2, s) -> push ctx (Ir.StoreIdx (remap o, remap i2, remap s))
  | Ir.ClassOf (d, o) -> push ctx (Ir.ClassOf (remap d, remap o))
  | Ir.Alloc (d, k, s) -> push ctx (Ir.Alloc (remap d, k, s))
  | Ir.Print r -> push ctx (Ir.Print (remap r))

let run ?hot_site ?decisions ~program ~policy m =
  let size_cache = Hashtbl.create 64 in
  let callee_size mid =
    match Hashtbl.find_opt size_cache mid with
    | Some s -> s
    | None ->
      let s = Size.of_method program.Ir.methods.(mid) in
      Hashtbl.add size_cache mid s;
      s
  in
  let ctx =
    {
      prog = program;
      policy;
      hot_site;
      callee_size;
      out = Vec.create ();
      nregs = m.Ir.nregs;
      size = Size.of_method m;
      cur = 0;
      stats = fresh_stats ();
      log = decisions;
      trace_on = Trace.enabled ();
    }
  in
  let nblocks = Array.length m.Ir.blocks in
  let label_map = Array.init nblocks (fun _ -> new_block ctx) in
  fill_blocks ctx ~owner:m.Ir.mid ~depth:0 ~chain:[ m.Ir.mid ] ~remap:(fun r -> r)
    ~label_map
    ~on_ret:(fun r -> terminate ctx (Ir.Ret r))
    m.Ir.blocks;
  let blocks =
    Array.map
      (fun ob ->
        match ob.oterm with
        | None ->
          (* Unreached continuation of a block whose filling ended in returns
             on all paths cannot happen: every output block is either a mapped
             input block (always terminated) or a continuation that filling
             resumed on.  Defensive: make it an empty self-loop-free return. *)
          assert false
        | Some t -> { Ir.instrs = Vec.to_array ob.oi; term = t })
      (Vec.to_array ctx.out)
  in
  ({ m with Ir.nregs = ctx.nregs; blocks }, ctx.stats)

(* Decision-procedure-only walk: visit call sites in exactly the order
   [run] would and record each policy-decided site's effective accept bit
   ('1'/'0'), without building any output IR.  The traversal mirrors the
   transformation precisely — accepted callees are descended into depth-first
   with the original body from [program], the expanded-size accumulator grows
   on acceptance, the recursion guard skips chained callees (their outcome is
   policy-independent, so they contribute no bit), and [max_expanded_size]
   turns policy acceptances into rejections the same way [decide] does.

   The resulting bit string fully determines the transformed method: the
   emitted code depends only on which sites are expanded, so two policies
   with equal plans over a program compile it identically.  That makes the
   plan a sound semantic key for fitness caching (Fitcache). *)
let walk ?hot_site ~program ~policy m =
  let size_cache = Hashtbl.create 64 in
  let callee_size mid =
    match Hashtbl.find_opt size_cache mid with
    | Some s -> s
    | None ->
      let s = Size.of_method program.Ir.methods.(mid) in
      Hashtbl.add size_cache mid s;
      s
  in
  let buf = Buffer.create 64 in
  let size = ref (Size.of_method m) in
  let rec walk_blocks ~owner ~depth ~chain blocks =
    Array.iter
      (fun blk ->
        Array.iter
          (fun i ->
            match i with
            | Ir.Call (_, callee, _) when not (List.mem callee chain) ->
              let cs = callee_size callee in
              let hot =
                match hot_site with Some f -> f ~site_owner:owner ~callee | None -> false
              in
              let verdict =
                policy.Policy.decide
                  {
                    Policy.owner;
                    callee;
                    callee_size = cs;
                    inline_depth = depth + 1;
                    caller_size = !size;
                    hot;
                  }
              in
              let accept = verdict.Policy.accept && !size + cs <= max_expanded_size in
              Buffer.add_char buf (if accept then '1' else '0');
              if accept then begin
                size := !size + cs;
                walk_blocks ~owner:callee ~depth:(depth + 1) ~chain:(callee :: chain)
                  program.Ir.methods.(callee).Ir.blocks
              end
            | _ -> ())
          blk.Ir.instrs)
      blocks
  in
  walk_blocks ~owner:m.Ir.mid ~depth:0 ~chain:[ m.Ir.mid ] m.Ir.blocks;
  Buffer.contents buf
