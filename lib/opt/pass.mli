open Inltune_jir
(** First-class optimizer passes: each transformation in this directory
    wrapped behind a uniform interface (name, declared integer knobs, run).
    {!Plan} schedules pass instances by name; {!Pipeline} interprets the
    schedule. *)

(** A declared integer knob with its inclusive range and default.  Knob
    semantics belong to the interpreter — the only knob today, ["iters"],
    reruns the pass that many times. *)
type knob = {
  k_name : string;
  k_lo : int;
  k_hi : int;
  k_default : int;
}

(** Uniform per-pass stats.  Fields mirror the [Pipeline.stats] counters;
    each pass fills only its own, so a field-wise sum of a run's deltas
    equals the pipeline totals exactly. *)
type delta = {
  d_sites_seen : int;
  d_sites_inlined : int;
  d_hot_sites_seen : int;
  d_hot_sites_inlined : int;
  d_sites_guarded : int;
  d_folded : int;
  d_devirtualized : int;
  d_branches_folded : int;
  d_cse_replaced : int;
  d_copies_propagated : int;
  d_dce_removed : int;
}

val zero_delta : delta
val add_delta : delta -> delta -> delta

(** The pass's own transform count (every field summed; disjoint per pass). *)
val transforms : delta -> int

(** Everything a pass may consult besides the program and the method: the
    inlining decider and the adaptive scenario's profile-derived inputs. *)
type ctx = {
  decider : Decider.t;
  hot_site : (site_owner:Ir.mid -> callee:Ir.mid -> bool) option;
  devirt_oracle : Guarded_devirt.site_oracle option;
}

type t = {
  name : string;
  knobs : knob list;
  applicable : ctx -> bool;
      (** structurally skipped (no run, no span) when false — e.g. guarded
          devirtualization without a profile oracle *)
  run : Ir.program -> ctx -> Ir.methd -> Ir.methd * delta;
}

val guarded_devirt : t
val constprop : t
val inline : t
val cse : t
val copyprop : t
val dce : t
val cleanup : t

(** Every registered pass, in canonical (default-schedule) order. *)
val all : t list

val find : string -> t option
val find_knob : t -> string -> knob option
