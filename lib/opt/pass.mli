open Inltune_jir
(** First-class optimizer passes: each transformation in this directory
    wrapped behind a uniform interface (name, declared integer knobs, run).
    {!Plan} schedules pass instances by name; {!Pipeline} interprets the
    schedule. *)

(** A declared integer knob with its inclusive range and default.  Knob
    semantics belong to the interpreter — the only knob today, ["iters"],
    reruns the pass that many times. *)
type knob = {
  k_name : string;
  k_lo : int;
  k_hi : int;
  k_default : int;
}

(** Uniform per-pass stats.  Fields mirror the [Pipeline.stats] counters;
    each pass fills only its own, so a field-wise sum of a run's deltas
    equals the pipeline totals exactly. *)
type delta = {
  d_sites_seen : int;
  d_sites_inlined : int;
  d_hot_sites_seen : int;
  d_hot_sites_inlined : int;
  d_sites_guarded : int;
  d_folded : int;
  d_devirtualized : int;
  d_branches_folded : int;
  d_cse_replaced : int;
  d_copies_propagated : int;
  d_dce_removed : int;
}

val zero_delta : delta
val add_delta : delta -> delta -> delta

(** The pass's own transform count (every field summed; disjoint per pass). *)
val transforms : delta -> int

(** Everything a pass may consult besides the program and the method: the
    inlining decider and the adaptive scenario's profile-derived inputs. *)
type ctx = {
  decider : Decider.t;
  hot_site : (site_owner:Ir.mid -> callee:Ir.mid -> bool) option;
  devirt_oracle : Guarded_devirt.site_oracle option;
  profile : Hotpath.view option;
      (** adaptive scenario: live call-edge counts for the hot-path
          strategy; [None] under [Opt] *)
}

type t = {
  name : string;
  knobs : knob list;
  applicable : ctx -> bool;
      (** structurally skipped (no run, no span) when false — e.g. guarded
          devirtualization without a profile oracle *)
  run : Ir.program -> ctx -> knob:(string -> int) -> Ir.methd -> Ir.methd * delta;
      (** [knob] resolves this instance's declared knobs to their effective
          values (plan value or declared default); ["iters"] is interpreted
          by the pipeline, every other knob by the pass itself *)
  static_policy : ((string -> int) -> Ir.program -> Ir.methd -> Policy.t) option;
      (** for inliner passes whose decisions read nothing but the program
          and the site record: rebuilds the exact per-method {!Policy.t}
          from a knob lookup so {!Engine.walk} (and thus Fitcache) can
          replay the pass's verdict sequence *)
}

val guarded_devirt : t
val constprop : t
val inline : t

(** The three alternative inlining strategies, each a full engine run under
    its own policy (the decider is ignored): iterate-to-fixpoint small-leaf
    selection ({!Leaves}), profile-guided hot-path expansion ({!Hotpath};
    inapplicable without a profile), and per-root region growth
    ({!Region}). *)
val inline_leaves : t
val inline_hot : t
val inline_region : t

val cse : t
val copyprop : t
val dce : t
val cleanup : t

(** Every registered pass, in canonical (default-schedule) order. *)
val all : t list

(** The pass names that drive the inline engine (["inline"] and the three
    strategies) — the set the pipeline's size trajectory and Fitcache's
    plan-shape analysis key off. *)
val inliner_names : string list

val is_inliner_name : string -> bool
val find : string -> t option
val find_knob : t -> string -> knob option
