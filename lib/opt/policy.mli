open Inltune_jir
(** First-class inlining policies: the interface the inliner consults at
    every call site.

    A policy maps a {!site} (everything the inliner knows at the moment a
    call is considered) to a {!verdict}.  The paper's Fig. 3/4 threshold
    heuristic is one implementation ({!of_heuristic}); learned policies
    (e.g. decision trees over call-site features, see [lib/policy]) are
    another; {!of_custom} wraps the bare decision closures used by the
    knapsack baseline. *)

(** What the inliner knows when it decides one call site. *)
type site = {
  owner : Ir.mid;        (** method whose source body holds the call site *)
  callee : Ir.mid;
  callee_size : int;     (** static size estimate of the callee's body *)
  inline_depth : int;    (** depth of the inline chain; direct calls are 1 *)
  caller_size : int;     (** expanded size of the caller so far *)
  hot : bool;            (** profile classified the site as hot (Fig. 4 path) *)
}

(** A decision plus the name of the rule that made it — the vocabulary
    trace events and summaries report (e.g. ["callee_too_big"],
    ["tree_accept"]). *)
type verdict = {
  accept : bool;
  rule : string;
}

type t = {
  name : string;              (** policy family, e.g. ["heuristic"], ["tree"] *)
  decide : site -> verdict;   (** must be pure and deterministic *)
}

(** The paper's decision procedure: hot sites take the single Fig. 4 test,
    all others the Fig. 3 sequence.  Rule names are exactly
    {!Heuristic.outcome_name} / {!Heuristic.hot_outcome_name}. *)
val of_heuristic : Heuristic.t -> t

(** Wrap a bare accept/reject closure; rules are ["custom_accept"] /
    ["custom_reject"]. *)
val of_custom :
  (site_owner:Ir.mid ->
  callee:Ir.mid ->
  callee_size:int ->
  inline_depth:int ->
  caller_size:int ->
  bool) ->
  t

(** [of_predicate ~name ~accept_rule ~reject_rule f] lifts a pure site
    predicate to a policy whose verdicts carry the given rule strings —
    the seam evolved GP predicates decode through. *)
val of_predicate :
  name:string -> accept_rule:string -> reject_rule:string -> (site -> bool) -> t

(** Accepts every site / refuses every site (testing aids). *)
val always : t
val never : t
