open Inltune_jir
(** Heuristic-driven method inlining (the transformation the tuned heuristic
    controls).  Semantics-preserving for well-formed (define-before-use)
    programs. *)

type stats = {
  mutable sites_seen : int;
  mutable sites_inlined : int;
  mutable hot_sites_seen : int;
  mutable hot_sites_inlined : int;
}

val fresh_stats : unit -> stats

(** Why a call site was or wasn't inlined: the heuristic test that fired
    (Fig. 3 / Fig. 4 vocabulary), or one of the transformation's own
    guards. *)
type reason =
  | Static of Heuristic.outcome    (** the Fig. 3 test sequence *)
  | Hot of Heuristic.hot_outcome   (** the Fig. 4 hot-site test *)
  | Custom_policy of bool          (** verdict of a custom decision function *)
  | Recursive                      (** callee already on the inline chain *)
  | Space_cap                      (** accepted by the heuristic, blocked by
                                       {!max_expanded_size} *)

val reason_accepts : reason -> bool
val reason_name : reason -> string

(** One record per call site the inliner examined, in decision order. *)
type decision = {
  d_site_owner : Ir.mid;
  d_callee : Ir.mid;
  d_callee_size : int;
  d_depth : int;
  d_caller_size : int;  (** expanded caller size when the site was decided *)
  d_reason : reason;
}

val decision_accepts : decision -> bool

(** Hard cap on the expanded size of any single method, in size-estimate
    units; a code-space sanity net above anything the heuristic's caller test
    normally allows. *)
val max_expanded_size : int

(** [run ~program ~heuristic m] inlines call sites in [m] per the heuristic.
    [hot_site] (adaptive scenario) selects call sites that take the
    single-test hot path; [site_owner] is the method whose source body the
    call site originally belonged to.  [decisions], when given, collects one
    {!decision} record per examined call site; independently, every decision
    is emitted as an "inline.decision" trace event when tracing is enabled. *)
val run :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) ->
  ?decisions:decision Inltune_support.Vec.t ->
  program:Ir.program ->
  heuristic:Heuristic.t ->
  Ir.methd ->
  Ir.methd * stats

(** Same transformation driven by an arbitrary per-site decision procedure
    (used by alternative inlining strategies such as the knapsack baseline).
    The hard size cap still applies on top of [decide]. *)
val run_custom :
  ?decisions:decision Inltune_support.Vec.t ->
  decide:
    (site_owner:Ir.mid ->
    callee:Ir.mid ->
    callee_size:int ->
    inline_depth:int ->
    caller_size:int ->
    bool) ->
  program:Ir.program ->
  Ir.methd ->
  Ir.methd * stats
