open Inltune_jir
(** Heuristic-driven method inlining (the transformation the tuned heuristic
    controls).  Semantics-preserving for well-formed (define-before-use)
    programs. *)

type stats = Engine.stats = {
  mutable sites_seen : int;
  mutable sites_inlined : int;
  mutable hot_sites_seen : int;
  mutable hot_sites_inlined : int;
}

val fresh_stats : unit -> stats

(** Why a call site was or wasn't inlined: the policy rule that fired (for
    the heuristic policy this is the Fig. 3 / Fig. 4 vocabulary), or one of
    the transformation's own guards. *)
type reason = Engine.reason =
  | Rule of Policy.verdict  (** the policy's verdict, with the rule name *)
  | Recursive               (** callee already on the inline chain *)
  | Space_cap               (** accepted by the policy, blocked by
                                {!max_expanded_size} *)

val reason_accepts : reason -> bool
val reason_name : reason -> string

(** One record per call site the inliner examined, in decision order. *)
type decision = Engine.decision = {
  d_site_owner : Ir.mid;
  d_callee : Ir.mid;
  d_callee_size : int;
  d_depth : int;
  d_caller_size : int;  (** expanded caller size when the site was decided *)
  d_reason : reason;
}

val decision_accepts : decision -> bool

(** Hard cap on the expanded size of any single method, in size-estimate
    units; a code-space sanity net above anything the heuristic's caller test
    normally allows. *)
val max_expanded_size : int

(** [run_policy ~program ~policy m] inlines call sites in [m] as decided by
    an arbitrary first-class policy.  [hot_site] (adaptive scenario) selects
    the call sites whose {!Policy.site.hot} flag is set — the heuristic
    policy takes the single-test Fig. 4 path on them.  [decisions], when
    given, collects one {!decision} record per examined call site;
    independently, every decision is emitted as an "inline.decision" trace
    event when tracing is enabled. *)
val run_policy :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) ->
  ?decisions:decision Inltune_support.Vec.t ->
  program:Ir.program ->
  policy:Policy.t ->
  Ir.methd ->
  Ir.methd * stats

(** [run ~program ~heuristic m] is {!run_policy} with
    [Policy.of_heuristic heuristic] (the paper's Fig. 3/4 procedure). *)
val run :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) ->
  ?decisions:decision Inltune_support.Vec.t ->
  program:Ir.program ->
  heuristic:Heuristic.t ->
  Ir.methd ->
  Ir.methd * stats

(** [plan_policy ~program ~policy m] runs only the decision procedure — no
    code is built, nothing is executed — and returns the method's inlining
    plan: one '1'/'0' per policy-decided call site, in the exact order
    {!run_policy} decides them (accepted callees are descended into
    depth-first; recursion-guarded sites are policy-independent and
    contribute no bit; {!max_expanded_size} overrides acceptances the same
    way).  The plan fully determines the transformed code, so equal plans
    imply identical compilation — the semantic cache key fitness caching
    relies on. *)
val plan_policy :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) ->
  program:Ir.program ->
  policy:Policy.t ->
  Ir.methd ->
  string

(** {!plan_policy} with [Policy.of_heuristic heuristic]. *)
val plan :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) ->
  program:Ir.program ->
  heuristic:Heuristic.t ->
  Ir.methd ->
  string

(** Same transformation driven by an arbitrary per-site decision procedure
    (used by alternative inlining strategies such as the knapsack baseline).
    The hard size cap still applies on top of [decide]. *)
val run_custom :
  ?decisions:decision Inltune_support.Vec.t ->
  decide:
    (site_owner:Ir.mid ->
    callee:Ir.mid ->
    callee_size:int ->
    inline_depth:int ->
    caller_size:int ->
    bool) ->
  program:Ir.program ->
  Ir.methd ->
  Ir.methd * stats
