open Inltune_jir
(* Block-local copy propagation: within a basic block, uses of a register
   that was assigned [Move (d, s)] are rewritten to use [s] directly while
   neither register has been redefined.  Cleans up the argument-binding moves
   the inliner introduces when caller and callee cooperate within a block;
   cross-block copies are left to the interpreter (they model the real
   register moves Jikes emits after inlining). *)

let analysis_budget = 2_000_000

let run m =
  if Array.length m.Ir.blocks * m.Ir.nregs > analysis_budget then (m, 0)
  else
  let nregs = m.Ir.nregs in
  let rewritten = ref 0 in
  (* copy_of.(r) = s >= 0 when r currently holds a copy of s, -1 otherwise.
     copiers.(s) over-approximates the registers copying s (it may hold
     stale entries from registers since redefined; [invalidate] re-checks),
     so killing the copies of a redefined source is proportional to the
     copies made, not to nregs. *)
  let copy_of = Array.make nregs (-1) in
  let copiers = Array.make nregs [] in
  let blocks =
    Array.map
      (fun blk ->
        Array.fill copy_of 0 nregs (-1);
        Array.fill copiers 0 nregs [];
        let resolve r =
          let s = copy_of.(r) in
          if s >= 0 then begin
            incr rewritten;
            s
          end
          else r
        in
        let invalidate d =
          copy_of.(d) <- -1;
          match copiers.(d) with
          | [] -> ()
          | rs ->
            List.iter (fun r -> if copy_of.(r) = d then copy_of.(r) <- -1) rs;
            copiers.(d) <- []
        in
        (* [resolve r = r] exactly when no copy fires (a register is never a
           copy of itself), so sharing [i] when every operand resolves to
           itself is precise.  Copy-on-write at both levels — instruction
           boxes and the per-block array — because this pass runs on every
           optimizing compile and mostly changes nothing. *)
        let resolve_args args =
          let changed = ref false in
          let args' =
            Array.map
              (fun r ->
                let r' = resolve r in
                if r' <> r then changed := true;
                r')
              args
          in
          if !changed then Some args' else None
        in
        let instrs = blk.Ir.instrs in
        let out = ref instrs in
        for k = 0 to Array.length instrs - 1 do
          let i = instrs.(k) in
          let replacement =
            match i with
            | Ir.Const _ | Ir.Alloc _ -> None
            | Ir.Move (d, s) ->
              let s' = resolve s in
              if s' <> s then Some (Ir.Move (d, s')) else None
            | Ir.Binop (op, d, a, b) ->
              let a' = resolve a and b' = resolve b in
              if a' <> a || b' <> b then Some (Ir.Binop (op, d, a', b')) else None
            | Ir.Cmp (op, d, a, b) ->
              let a' = resolve a and b' = resolve b in
              if a' <> a || b' <> b then Some (Ir.Cmp (op, d, a', b')) else None
            | Ir.Load (d, o, off) ->
              let o' = resolve o in
              if o' <> o then Some (Ir.Load (d, o', off)) else None
            | Ir.Store (o, off, s) ->
              let o' = resolve o and s' = resolve s in
              if o' <> o || s' <> s then Some (Ir.Store (o', off, s')) else None
            | Ir.LoadIdx (d, o, ix) ->
              let o' = resolve o and ix' = resolve ix in
              if o' <> o || ix' <> ix then Some (Ir.LoadIdx (d, o', ix')) else None
            | Ir.StoreIdx (o, ix, s) ->
              let o' = resolve o and ix' = resolve ix and s' = resolve s in
              if o' <> o || ix' <> ix || s' <> s then Some (Ir.StoreIdx (o', ix', s'))
              else None
            | Ir.ClassOf (d, o) ->
              let o' = resolve o in
              if o' <> o then Some (Ir.ClassOf (d, o')) else None
            | Ir.Call (d, t, args) -> (
              match resolve_args args with
              | Some args' -> Some (Ir.Call (d, t, args'))
              | None -> None)
            | Ir.CallVirt (d, slot, recv, args) -> (
              let recv' = resolve recv in
              match resolve_args args with
              | Some args' -> Some (Ir.CallVirt (d, slot, recv', args'))
              | None ->
                if recv' <> recv then Some (Ir.CallVirt (d, slot, recv', args))
                else None)
            | Ir.Print r ->
              let r' = resolve r in
              if r' <> r then Some (Ir.Print r') else None
          in
          let i' =
            match replacement with
            | Some i' ->
              if !out == instrs then out := Array.copy instrs;
              (!out).(k) <- i';
              i'
            | None -> i
          in
          let d = Ir.def_reg i' in
          if d >= 0 then begin
            invalidate d;
            match i' with
            | Ir.Move (d, s) when d <> s ->
              copy_of.(d) <- s;
              copiers.(s) <- d :: copiers.(s)
            | _ -> ()
          end
        done;
        let term =
          match blk.Ir.term with
          | Ir.Jump _ -> blk.Ir.term
          | Ir.Branch (c, t, f) ->
            let c' = resolve c in
            if c' <> c then Ir.Branch (c', t, f) else blk.Ir.term
          | Ir.Ret r ->
            let r' = resolve r in
            if r' <> r then Ir.Ret r' else blk.Ir.term
        in
        if !out == instrs && term == blk.Ir.term then blk
        else { Ir.instrs = !out; term })
      m.Ir.blocks
  in
  ({ m with Ir.blocks }, !rewritten)
