open Inltune_jir
(** The optimizing compiler's middle end: devirtualization, heuristic-driven
    inlining, constant/copy propagation, DCE, CFG cleanup. *)

type site_decision =
  site_owner:Ir.mid ->
  callee:Ir.mid ->
  callee_size:int ->
  inline_depth:int ->
  caller_size:int ->
  bool

type config = {
  heuristic : Heuristic.t;
  inline_enabled : bool;
  optimize : bool;
  hot_site : (site_owner:Ir.mid -> callee:Ir.mid -> bool) option;
      (** adaptive scenario: which call sites are profile-hot *)
  policy : Policy.t option;
      (** first-class policy replacing the heuristic (e.g. a learned tree) *)
  custom_inliner : site_decision option;
      (** bare decision closure; overrides both (e.g. the knapsack baseline) *)
  devirt_oracle : Guarded_devirt.site_oracle option;
      (** adaptive scenario: guard-devirtualize monomorphic virtual sites *)
}

(** Standard optimizing configuration around a heuristic. *)
val opt_config : ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) -> Heuristic.t -> config

(** Optimizations on, inlining off (the paper's Fig. 1 baseline). *)
val no_inline_config : config

(** Optimizations on, inlining decided per call site by [decide]. *)
val custom_config : site_decision -> config

(** Optimizations on, inlining decided by a first-class {!Policy.t}. *)
val policy_config :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) -> Policy.t -> config

type stats = {
  size_before : int;   (** size estimate of the input method *)
  size_peak : int;     (** size right after inlining (compile-cost driver) *)
  size_after : int;    (** size of the emitted code (I-cache driver) *)
  sites_seen : int;
  sites_inlined : int;
  hot_sites_seen : int;
  hot_sites_inlined : int;
  sites_guarded : int;  (** virtual sites guard-devirtualized *)
  folded : int;
  devirtualized : int;
  cse_replaced : int;
  copies_propagated : int;
  dce_removed : int;
}

(** Optimize one method of [program].  Semantics-preserving. *)
val run : Ir.program -> config -> Ir.methd -> Ir.methd * stats
