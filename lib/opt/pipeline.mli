open Inltune_jir
(** The optimizing compiler's middle end: a thin interpreter over a
    {!Plan.t} schedule of {!Pass.t} instances.  The default plan reproduces
    the historical hard-coded order (devirtualization, decider-driven
    inlining, constant/copy propagation, CSE, DCE, CFG cleanup)
    bit-identically. *)

type site_decision = Decider.site_decision

type config = {
  decider : Decider.t;   (** who decides each inline site *)
  plan : Plan.t;         (** which passes run, in what order, how hard *)
  hot_site : (site_owner:Ir.mid -> callee:Ir.mid -> bool) option;
      (** adaptive scenario: which call sites are profile-hot *)
  devirt_oracle : Guarded_devirt.site_oracle option;
      (** adaptive scenario: guard-devirtualize monomorphic virtual sites *)
  profile : Hotpath.view option;
      (** adaptive scenario: live call-edge counts for the hot-path
          inlining strategy; [None] under [Opt] *)
}

(** The one constructor: [plan] defaults to {!Plan.default}. *)
val make :
  ?plan:Plan.t ->
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) ->
  ?devirt_oracle:Guarded_devirt.site_oracle ->
  ?profile:Hotpath.view ->
  Decider.t ->
  config

(** Standard optimizing configuration around a heuristic. *)
val opt_config : ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) -> Heuristic.t -> config

(** Optimizations on, inlining off (the paper's Fig. 1 baseline): the
    default plan with the inline item disabled. *)
val no_inline_config : config

(** Optimizations on, inlining decided per call site by [decide]. *)
val custom_config : site_decision -> config

(** Optimizations on, inlining decided by a first-class {!Policy.t}. *)
val policy_config :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) -> Policy.t -> config

type stats = {
  size_before : int;   (** size estimate of the input method *)
  size_peak : int;     (** size right after the last inliner-kind item
                           (compile-cost driver) *)
  size_after : int;    (** size of the emitted code (I-cache driver) *)
  sites_seen : int;
  sites_inlined : int;
  hot_sites_seen : int;
  hot_sites_inlined : int;
  sites_guarded : int;  (** virtual sites guard-devirtualized *)
  folded : int;
  devirtualized : int;
  cse_replaced : int;
  copies_propagated : int;
  dce_removed : int;
}

(** Optimize one method of [program] under the config's plan.
    Semantics-preserving. *)
val run : Ir.program -> config -> Ir.methd -> Ir.methd * stats

(** Like {!run}, also returning one [(pass name, delta)] per executed plan
    item, in execution order.  The field-wise sum of the deltas equals the
    returned totals exactly (tests assert this). *)
val run_detailed :
  Ir.program -> config -> Ir.methd -> Ir.methd * stats * (string * Pass.delta) list
