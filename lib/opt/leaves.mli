open Inltune_jir
(** Small-leaf inliner strategy: iterate-to-fixpoint leaf selection,
    collapsed into one {!Engine} run via precomputed leaf levels. *)

(** Level assigned to methods that never become leaves (call cycles,
    virtual calls). *)
val never_leaf : int

(** Leaf level per method: 0 = no calls at all; k = every static callee
    has level < k; {!never_leaf} otherwise.  Cached per program (by
    physical identity), safe under parallel tuners. *)
val levels : Ir.program -> int array

(** [policy ~leaf_size ~rounds program] accepts a call site iff the callee's
    leaf level is below [rounds] and its static size is at most
    [leaf_size].  Static: reads only the program and the site record, so
    {!Engine.walk} over it is exact. *)
val policy : leaf_size:int -> rounds:int -> Ir.program -> Policy.t
