open Inltune_jir
(** Region/depth-budget inliner strategy: grow an inlined region around
    each root method within a per-root expansion budget and depth cap. *)

(** [policy ~budget ~depth root] accepts a call site iff the inline chain
    depth is at most [depth] and the region's total expansion over [root]'s
    own size, callee included, stays within [budget].  Static: reads only
    the site record and [root]'s static size, so {!Engine.walk} over it is
    exact. *)
val policy : budget:int -> depth:int -> Ir.methd -> Policy.t
