open Inltune_jir
(** The shared inline engine: one transformation, many strategies.

    Every inlining strategy in the repository — the paper's tuned Fig. 3/4
    heuristic, the small-leaf / hot-path / region strategies, the knapsack
    baseline, trained policy trees — drives this engine through a
    first-class {!Policy.t}.  The engine owns the mechanics (splicing,
    register/label remapping, the recursion guard, the absolute
    {!max_expanded_size} cap, decision recording and tracing); strategies
    own only the per-site accept/reject choice. *)

type stats = {
  mutable sites_seen : int;
  mutable sites_inlined : int;
  mutable hot_sites_seen : int;
  mutable hot_sites_inlined : int;
}

val fresh_stats : unit -> stats

(** Why a call site was or wasn't inlined: the policy rule that fired, or
    one of the engine's own guards. *)
type reason =
  | Rule of Policy.verdict  (** the policy's verdict, with the rule name *)
  | Recursive               (** callee already on the inline chain *)
  | Space_cap               (** accepted by the policy, blocked by
                                {!max_expanded_size} *)

val reason_accepts : reason -> bool
val reason_name : reason -> string

(** One record per call site the engine examined, in decision order. *)
type decision = {
  d_site_owner : Ir.mid;
  d_callee : Ir.mid;
  d_callee_size : int;
  d_depth : int;
  d_caller_size : int;  (** expanded caller size when the site was decided *)
  d_reason : reason;
}

val decision_accepts : decision -> bool

(** Hard cap on the expanded size of any single method, in size-estimate
    units; a code-space sanity net above anything a policy's caller test
    normally allows. *)
val max_expanded_size : int

(** [run ~program ~policy m] inlines call sites in [m] as decided by the
    policy.  [hot_site] (adaptive scenario) selects the call sites whose
    {!Policy.site.hot} flag is set.  [decisions], when given, collects one
    {!decision} record per examined call site; independently, every decision
    is emitted as an "inline.decision" trace event when tracing is
    enabled. *)
val run :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) ->
  ?decisions:decision Inltune_support.Vec.t ->
  program:Ir.program ->
  policy:Policy.t ->
  Ir.methd ->
  Ir.methd * stats

(** [walk ~program ~policy m] runs only the decision procedure — no code is
    built, nothing is executed — and returns the method's inlining plan: one
    '1'/'0' per policy-decided call site, in the exact order {!run} decides
    them (accepted callees are descended into depth-first; recursion-guarded
    sites are policy-independent and contribute no bit;
    {!max_expanded_size} overrides acceptances the same way).  The plan
    fully determines the transformed code, so equal plans imply identical
    compilation — the semantic cache key fitness caching relies on. *)
val walk :
  ?hot_site:(site_owner:Ir.mid -> callee:Ir.mid -> bool) ->
  program:Ir.program ->
  policy:Policy.t ->
  Ir.methd ->
  string
