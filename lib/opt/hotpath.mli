open Inltune_jir
(** Profile-guided hot-path inliner strategy: inline the call edges that
    carry at least a tunable per-mille of all recorded calls, within a
    per-root expansion budget. *)

(** The strategy's window onto the live profile: per-edge execution counts
    and the total number of recorded calls.  Installed by the VM at
    compile time under the adaptive scenarios; absent under [Opt] (no
    profile exists), which makes the pass structurally inapplicable. *)
type view = {
  edge_count : site_owner:Ir.mid -> callee:Ir.mid -> int;
  total_calls : unit -> int;
}

(** [policy ~hot_permille ~budget view root] accepts a call site iff its
    edge carries at least [hot_permille] ‰ of all recorded calls and the
    expansion over [root]'s own size stays within [budget].  Not static —
    decisions read the live profile. *)
val policy : hot_permille:int -> budget:int -> view -> Ir.methd -> Policy.t
