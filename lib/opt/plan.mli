(** Serializable optimization plans: an ordered schedule of {!Pass}
    instances with per-instance enable flags and knob values.
    [Pipeline.run] interprets one; {!default} reproduces the historical
    hard-coded schedule bit-identically. *)

type item = {
  pass : string;                (** a registered {!Pass} name *)
  enabled : bool;
  knobs : (string * int) list;  (** declared-knob values; omitted = default *)
}

type t = { items : item array }

(** The historical pipeline — guarded_devirt, constprop, inline, constprop,
    cse, copyprop, dce, cleanup, all enabled with default knobs — plus the
    three alternative inlining strategies (inline_leaves / inline_hot
    before the inline item, inline_region after it) scheduled *disabled*,
    so the default plan's behavior is bit-identical to the pre-strategy
    pipeline. *)
val default : t

(** {!default} with the inline item disabled (the Fig. 1 baseline and the
    O1 tier). *)
val no_inline : t

(** Disable every item scheduling the named pass. *)
val disable : string -> t -> t

(** Disable the dataflow items (constprop / cse / copyprop / dce) — the
    "inlining without optimization" ablation.  Devirtualization, inlining,
    and CFG cleanup stay. *)
val without_dataflow : t -> t

val has_enabled : string -> t -> bool
val has_item : string -> t -> bool

(** Effective knob value of an item (stored value, else the pass's declared
    default).  Raises [Invalid_argument] for an undeclared knob. *)
val item_knob : item -> string -> int

(** Check every item against the pass registry: unknown pass, unknown knob,
    out-of-range value, or a duplicated inliner-kind pass is a one-line
    [Error]. *)
val validate : t -> (t, string) result

(** Canonical text form ("inltune-plan v1" header + one "pass" line per
    item, every declared knob spelled out).  A fixpoint of {!of_string}. *)
val to_string : t -> string

(** Parse and validate the text form.  Blank lines and '#' comments are
    skipped; any malformed or invalid line is a one-line [Error] naming the
    line number. *)
val of_string : string -> (t, string) result

(** Canonical-text equality (knob defaults normalized away). *)
val equal : t -> t -> bool

val is_default : t -> bool

(** Hex digest of the canonical text — the plan tag in fitness-cache keys. *)
val digest : t -> string

(** The first enabled inliner-kind item ({!Pass.inliner_names}) reached
    through the canonical pre-inline schedule (optional guarded_devirt +
    exactly one single-iteration constprop), ignoring passes [skip] deems
    structurally inapplicable; [None] when the schedule diverges from what
    [Engine.walk] over once-constprop'd methods assumes, or no inliner is
    enabled.  The decision-signature cache's plan-shape analysis. *)
val first_walkable_inliner : ?skip:(string -> bool) -> t -> item option

(** Whether [Inline.plan] over once-constprop'd methods reproduces this
    plan's exact inline decisions under Opt (no profile inputs): the first
    walkable inliner is the decider-driven ["inline"] item.  The
    decision-signature cache uses the exact heuristic/policy walk signature
    iff this holds. *)
val walk_compatible : t -> bool

(** {2 Genome encoding} — the plan-gene tail the GA appends to the five
    Table 1 genes: pass toggles, post-inline strengths, payoff-pass order.
    The pre-inline constprop and final cleanup are pinned on. *)

val gene_names : string array

(** Inclusive per-gene ranges, in {!gene_names} order. *)
val tunable_ranges : (int * int) array

(** Genes that decode to {!default}. *)
val default_genes : int array

(** Decode a plan-gene vector; raises on wrong arity and clamps each gene
    into its range (corrupt checkpoints cannot produce an invalid plan). *)
val of_genes : int array -> t
