(* Serializable optimization plans: an ordered schedule of pass instances
   with per-instance enable flags and knob values.  [Pipeline.run] is an
   interpreter over one of these; [default] reproduces the historical
   hard-coded schedule exactly, so every pre-plan experiment is bit-identical
   under it.

   Text format (the canonical form [to_string] prints is a fixpoint of
   [of_string]):

       inltune-plan v1
       pass guarded_devirt on
       pass constprop on iters=1
       pass inline on
       ...

   Each "pass" line names a registered {!Pass}, an on/off flag, and values
   for (a subset of) the pass's declared knobs.  Unknown passes, unknown
   knobs, and out-of-range knob values are one-line [Error]s — the CLI turns
   them into exit code 2. *)

type item = {
  pass : string;
  enabled : bool;
  knobs : (string * int) list;  (* values for declared knobs; omitted = default *)
}

type t = { items : item array }

let item ?(enabled = true) ?(knobs = []) pass = { pass; enabled; knobs }

(* The historical pipeline order: devirtualize (adaptive only), fold to
   expose static calls, inline, then let the dataflow passes collect the
   payoff, and clean the CFG.  The three alternative inlining strategies
   are scheduled around the decider-driven inline item but ship *disabled*:
   with them off every measurement is bit-identical to the pre-strategy
   pipeline, and turning one on is a plan edit (or a plan-genome gene). *)
let default =
  {
    items =
      [|
        item "guarded_devirt";
        item "constprop";
        item ~enabled:false "inline_leaves";
        item ~enabled:false "inline_hot";
        item "inline";
        item ~enabled:false "inline_region";
        item "constprop";
        item "cse";
        item "copyprop";
        item "dce";
        item "cleanup";
      |];
  }

let disable name t =
  { items = Array.map (fun it -> if it.pass = name then { it with enabled = false } else it) t.items }

(* The paper's Fig. 1 baseline (and the O1 tier): full dataflow, no
   inlining. *)
let no_inline = disable "inline" default

(* The ablation in DESIGN.md section 5: inlining without the payoff passes.
   Guarded devirtualization, inlining, and CFG cleanup stay. *)
let dataflow_passes = [ "constprop"; "cse"; "copyprop"; "dce" ]

let without_dataflow t =
  {
    items =
      Array.map
        (fun it -> if List.mem it.pass dataflow_passes then { it with enabled = false } else it)
        t.items;
  }

let has_enabled name t =
  Array.exists (fun it -> it.enabled && it.pass = name) t.items

let has_item name t = Array.exists (fun it -> it.pass = name) t.items

(* Knob value of an item: the stored value, else the pass's declared
   default.  [validate]d plans only hold declared knobs in range. *)
let item_knob it name =
  match List.assoc_opt name it.knobs with
  | Some v -> v
  | None -> (
    match Option.bind (Pass.find it.pass) (fun p -> Pass.find_knob p name) with
    | Some k -> k.Pass.k_default
    | None -> invalid_arg (Printf.sprintf "Plan.item_knob: %s has no knob %s" it.pass name))

let validate_item ~where it =
  match Pass.find it.pass with
  | None -> Error (Printf.sprintf "%s: unknown pass '%s'" where it.pass)
  | Some p ->
    let rec check = function
      | [] -> Ok ()
      | (kname, v) :: rest -> (
        match Pass.find_knob p kname with
        | None ->
          Error (Printf.sprintf "%s: unknown knob '%s' for pass '%s'" where kname it.pass)
        | Some k ->
          if v < k.Pass.k_lo || v > k.Pass.k_hi then
            Error
              (Printf.sprintf "%s: knob '%s' of pass '%s' out of range [%d,%d]: %d" where
                 kname it.pass k.Pass.k_lo k.Pass.k_hi v)
          else check rest)
    in
    check it.knobs

(* Inliner-kind passes may appear at most once per plan: a second instance
   would re-expand already-expanded code, and the size trajectory / cache
   shape analysis both assume a single site for each strategy.  (constprop
   and friends may legitimately repeat — the default plan schedules
   constprop twice.) *)
let duplicate_inliner ~where ~seen it =
  if Pass.is_inliner_name it.pass && List.mem it.pass seen then
    Some (Printf.sprintf "%s: duplicate pass '%s'" where it.pass)
  else None

let validate t =
  let rec go i seen =
    if i >= Array.length t.items then Ok t
    else
      let where = Printf.sprintf "item %d" (i + 1) in
      let it = t.items.(i) in
      match duplicate_inliner ~where ~seen it with
      | Some e -> Error e
      | None -> (
        match validate_item ~where it with
        | Ok () -> go (i + 1) (it.pass :: seen)
        | Error e -> Error e)
  in
  go 0 []

(* --- text form ----------------------------------------------------------- *)

let header = "inltune-plan v1"

(* Canonical: every declared knob printed with its effective value, so two
   plans that behave identically serialize identically. *)
let item_to_string it =
  let b = Buffer.create 32 in
  Buffer.add_string b "pass ";
  Buffer.add_string b it.pass;
  Buffer.add_string b (if it.enabled then " on" else " off");
  (match Pass.find it.pass with
  | None -> ()
  | Some p ->
    List.iter
      (fun k ->
        Buffer.add_string b
          (Printf.sprintf " %s=%d" k.Pass.k_name (item_knob it k.Pass.k_name)))
      p.Pass.knobs);
  Buffer.contents b

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  Array.iter
    (fun it ->
      Buffer.add_string b (item_to_string it);
      Buffer.add_char b '\n')
    t.items;
  Buffer.contents b

let parse_item ~where tokens =
  match tokens with
  | pass :: flag :: knobs -> (
    let enabled =
      match flag with
      | "on" -> Ok true
      | "off" -> Ok false
      | s -> Error (Printf.sprintf "%s: expected 'on' or 'off', got '%s'" where s)
    in
    match enabled with
    | Error e -> Error e
    | Ok enabled ->
      let rec parse_knobs acc = function
        | [] -> Ok (List.rev acc)
        | kv :: rest -> (
          match String.index_opt kv '=' with
          | None -> Error (Printf.sprintf "%s: expected knob 'name=value', got '%s'" where kv)
          | Some i -> (
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match int_of_string_opt v with
            | None -> Error (Printf.sprintf "%s: knob '%s' value '%s' is not an integer" where k v)
            | Some v -> parse_knobs ((k, v) :: acc) rest))
      in
      match parse_knobs [] knobs with
      | Error e -> Error e
      | Ok knobs -> (
        let it = { pass; enabled; knobs } in
        match validate_item ~where it with Ok () -> Ok it | Error e -> Error e))
  | _ -> Error (Printf.sprintf "%s: expected 'pass <name> on|off [knob=value...]'" where)

let of_string src =
  let lines = String.split_on_char '\n' src in
  let rec go lineno seen_header seen acc = function
    | [] ->
      if not seen_header then Error "empty plan (missing 'inltune-plan v1' header)"
      else Ok { items = Array.of_list (List.rev acc) }
    | line :: rest -> (
      let where = Printf.sprintf "line %d" lineno in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go (lineno + 1) seen_header seen acc rest
      else if not seen_header then
        if line = header then go (lineno + 1) true seen acc rest
        else Error (Printf.sprintf "%s: expected header '%s'" where header)
      else
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | "pass" :: tokens -> (
          match parse_item ~where tokens with
          | Ok it -> (
            match duplicate_inliner ~where ~seen it with
            | Some e -> Error e
            | None -> go (lineno + 1) seen_header (it.pass :: seen) (it :: acc) rest)
          | Error e -> Error e)
        | verb :: _ -> Error (Printf.sprintf "%s: unknown directive '%s'" where verb)
        | [] -> go (lineno + 1) seen_header seen acc rest)
  in
  go 1 false [] [] lines

(* Canonical-text equality: knob defaults are normalized away, so a plan
   that spells out iters=1 equals one that omits it. *)
let equal a b = to_string a = to_string b
let is_default t = equal t default

(* Content digest of the canonical form — the plan tag fitness-cache keys
   carry for non-default plans. *)
let digest t = Digest.to_hex (Digest.string (to_string t))

(* --- fitness-cache compatibility ---------------------------------------- *)

(* The first enabled inliner-kind item reached through the canonical
   pre-inline schedule — optional guarded_devirt (a structural no-op
   without an oracle, which Opt never has) plus exactly one
   single-iteration constprop.  [skip] drops items that are structurally
   inapplicable in the caller's scenario (Fitcache passes the Opt-skips:
   inline_hot has no profile there).  [None] when the schedule diverges
   from what [Engine.walk] over once-constprop'd methods assumes, or when
   no inliner is enabled: the walk would see the wrong methods.  Whatever
   runs *after* the first inliner never affects that inliner's decisions,
   so it does not matter here (Fitcache reasons about it separately). *)
let first_walkable_inliner ?(skip = fun _ -> false) t =
  let n = Array.length t.items in
  let rec scan i saw_constprop =
    if i >= n then None (* no enabled inliner item *)
    else
      let it = t.items.(i) in
      if (not it.enabled) || skip it.pass then scan (i + 1) saw_constprop
      else if Pass.is_inliner_name it.pass then if saw_constprop then Some it else None
      else
        match it.pass with
        | "guarded_devirt" -> scan (i + 1) saw_constprop
        | "constprop" ->
          if saw_constprop || item_knob it "iters" <> 1 then None else scan (i + 1) true
        | _ -> None
  in
  scan 0 false

(* Whether [Inline.plan] over once-constprop'd methods reproduces this
   plan's exact inline-decision sequence under the Opt scenario (no profile
   inputs): the first walkable inliner is the decider-driven "inline" item.
   Strategy items scheduled after it are decider-independent functions of
   its output, so they never break the equal-walk ⇒ equal-code argument. *)
let walk_compatible t =
  match first_walkable_inliner ~skip:(fun p -> p = "inline_hot") t with
  | Some it -> it.pass = "inline"
  | None -> false

(* --- genome encoding ------------------------------------------------------ *)

(* The plan-genome tail the GA appends to the five Table 1 genes: pass
   toggles, post-inline strengths, the relative order of the payoff
   passes, and the inlining strategies' toggles and knobs.  The pre-inline
   constprop and the final cleanup are pinned on — dropping either mostly
   degenerates the search, and pinning constprop keeps every genome's
   pre-inline schedule walkable, so plan-genome tuning still benefits from
   the decision-signature cache (exact heuristic or strategy walks,
   depending on which inliner leads). *)
let gene_names =
  [|
    "GUARDED_DEVIRT";    (* 0/1 *)
    "INLINE";            (* 0/1 *)
    "POST_CONSTPROP";    (* 0/1 *)
    "POST_CONSTPROP_ITERS";  (* 1..3 *)
    "CSE";               (* 0/1 *)
    "COPYPROP";          (* 0/1 *)
    "DCE";               (* 0/1 *)
    "DCE_ITERS";         (* 1..2 *)
    "DATAFLOW_ORDER";    (* 0..5: permutation of cse/copyprop/dce *)
    (* Inlining-strategy toggles and knobs (see leaves.ml / hotpath.ml /
       region.ml); all default off, so the default genome still decodes to
       the bit-identical historical pipeline. *)
    "INLINE_LEAVES";     (* 0/1 *)
    "LEAVES_SIZE";       (* 1..60: inline_leaves leaf_size *)
    "LEAVES_ROUNDS";     (* 1..5: inline_leaves rounds *)
    "INLINE_HOT";        (* 0/1 *)
    "HOT_PERMILLE";      (* 1..500: inline_hot hot_permille *)
    "HOT_BUDGET";        (* 16..4096: inline_hot budget *)
    "INLINE_REGION";     (* 0/1 *)
    "REGION_BUDGET";     (* 16..4096: inline_region budget *)
    "REGION_DEPTH";      (* 1..12: inline_region depth *)
  |]

let tunable_ranges =
  [|
    (0, 1); (0, 1); (0, 1); (1, 3); (0, 1); (0, 1); (0, 1); (1, 2); (0, 5);
    (0, 1); (1, 60); (1, 5); (0, 1); (1, 500); (16, 4096); (0, 1); (16, 4096); (1, 12);
  |]

let default_genes = [| 1; 1; 1; 1; 1; 1; 1; 1; 0; 0; 12; 2; 0; 50; 512; 0; 512; 6 |]

(* The six orders of the three payoff passes; index 0 is the historical
   cse -> copyprop -> dce. *)
let orders =
  [|
    [| "cse"; "copyprop"; "dce" |];
    [| "cse"; "dce"; "copyprop" |];
    [| "copyprop"; "cse"; "dce" |];
    [| "copyprop"; "dce"; "cse" |];
    [| "dce"; "cse"; "copyprop" |];
    [| "dce"; "copyprop"; "cse" |];
  |]

(* Like [Heuristic.of_array]: raises on wrong arity, clamps each gene into
   range so corrupt checkpoints cannot produce an invalid plan. *)
let of_genes g =
  if Array.length g <> Array.length tunable_ranges then
    invalid_arg "Plan.of_genes: wrong genome length";
  let v i =
    let lo, hi = tunable_ranges.(i) in
    max lo (min hi g.(i))
  in
  let on i = v i = 1 in
  let iters_knobs i = if v i = 1 then [] else [ ("iters", v i) ] in
  let payoff name =
    match name with
    | "cse" -> item ~enabled:(on 4) "cse"
    | "copyprop" -> item ~enabled:(on 5) "copyprop"
    | "dce" -> item ~enabled:(on 6) ~knobs:(iters_knobs 7) "dce"
    | _ -> assert false
  in
  let order = orders.(v 8) in
  (* A disabled strategy keeps its declared-default knobs: its knob genes
     are behaviorally dead, and normalizing them away keeps every
     genome that differs only there on the same canonical text (one plan
     digest, one fitness-cache key). *)
  let strategy_knobs enabled_gene knobs =
    if on enabled_gene then knobs else []
  in
  {
    items =
      Array.concat
        [
          [|
            item ~enabled:(on 0) "guarded_devirt";
            item "constprop";
            item ~enabled:(on 9) "inline_leaves"
              ~knobs:(strategy_knobs 9 [ ("leaf_size", v 10); ("rounds", v 11) ]);
            item ~enabled:(on 12) "inline_hot"
              ~knobs:(strategy_knobs 12 [ ("hot_permille", v 13); ("budget", v 14) ]);
            item ~enabled:(on 1) "inline";
            item ~enabled:(on 15) "inline_region"
              ~knobs:(strategy_knobs 15 [ ("budget", v 16); ("depth", v 17) ]);
            item ~enabled:(on 2) ~knobs:(iters_knobs 3) "constprop";
          |];
          Array.map payoff order;
          [| item "cleanup" |];
        ];
  }
