open Inltune_jir
open Inltune_opt

(** The two compiler tiers: the fast non-optimizing baseline compiler and the
    optimizing compiler that runs the full {!Inltune_opt.Pipeline}. *)

type tier = Baseline | O1 | Optimized

type compiled = {
  tier : tier;
  code : Ir.methd;            (** the code the interpreter executes *)
  flat : Lower.code;          (** lowered stream the flat interpreter runs *)
  addr : int;                 (** code-space address (I-cache tag base) *)
  code_bytes : int;
  bytes_per_instr : int;
  block_offsets : int array;  (** instruction-index offset of each block *)
  quality : int;              (** per-instruction cost multiplier *)
  block_spill_cost : int;     (** cycles per executed block (spill traffic) *)
  spills : int;               (** intervals spilled by the register allocator *)
}

(** Compile with the baseline tier: no transformation, cheap compile cycles,
    slow bulky code.  Returns the compiled method and compile cycles. *)
val baseline : Platform.t -> Codespace.t -> profile:Profile.t -> Ir.methd -> compiled * int

(** Compile with the mid tier: dataflow passes, no inlining; linear compile
    cost, intermediate code quality.  Used by the ladder scenario. *)
val o1 : Platform.t -> Codespace.t -> Ir.program -> profile:Profile.t -> Ir.methd -> compiled * int

(** Compile with the optimizing tier: runs the pipeline under [config] and
    charges compile cycles superlinear in the post-inlining size.  Returns
    the compiled method, compile cycles, and the pipeline statistics. *)
val optimizing :
  Platform.t -> Codespace.t -> Ir.program -> Pipeline.config -> profile:Profile.t ->
  Ir.methd -> compiled * int * Pipeline.stats
