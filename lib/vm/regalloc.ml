open Inltune_jir

(* Linear-scan register allocation — as a *cost model*, not a transformation.

   Inlining merges register spaces: a method that swallowed five callees
   carries all their virtual registers, and on a register-starved machine
   (x86 of the paper's era had 8 GPRs) the allocator starts spilling.  This
   module estimates that cost so aggressive inlining pays a running-time
   price beyond the I-cache: the classic third term in the inlining
   trade-off.

   We approximate live intervals over a linearization of the blocks: each
   virtual register's interval spans from its first to its last occurrence
   (occurrences in loops are covered because the loop's blocks are contiguous
   in builder output, and the conservative [min,max] span only ever
   *overestimates* pressure).  Standard linear scan then counts how many
   intervals must live in memory, and how many of their occurrences turn
   into loads/stores. *)

type result = {
  vregs : int;            (* virtual registers with at least one occurrence *)
  max_pressure : int;     (* peak simultaneously-live intervals *)
  spilled : int;          (* intervals assigned to stack slots *)
  spill_ops : int;        (* occurrences of spilled registers (memory ops) *)
}

let occurrences m =
  (* first.(r), last.(r), count.(r) over a linear numbering; -1 = absent *)
  let n = m.Ir.nregs in
  let first = Array.make n (-1) in
  let last = Array.make n (-1) in
  let count = Array.make n 0 in
  let pos = ref 0 in
  let touch r =
    if first.(r) < 0 then first.(r) <- !pos;
    last.(r) <- !pos;
    count.(r) <- count.(r) + 1
  in
  (* Arguments are live from entry. *)
  for r = 0 to m.Ir.nargs - 1 do
    touch r
  done;
  Array.iter
    (fun blk ->
      Array.iter
        (fun i ->
          incr pos;
          Ir.iter_uses touch i;
          let d = Ir.def_reg i in
          if d >= 0 then touch d)
        blk.Ir.instrs;
      incr pos;
      match blk.Ir.term with
      | Ir.Branch (c, _, _) -> touch c
      | Ir.Ret r -> touch r
      | Ir.Jump _ -> ())
    m.Ir.blocks;
  (first, last, count)

let run ~phys_regs m =
  if phys_regs < 2 then invalid_arg "Regalloc.run: need at least 2 physical registers";
  let first, last, count = occurrences m in
  (* Present registers sorted by interval start, in place.  Ties broken by
     register index — the previous stable [List.sort] over an index-ordered
     list produced exactly that order, and tie order is observable (it decides
     which of two same-start intervals the scan considers first, and hence
     what spills). *)
  let intervals = Array.make m.Ir.nregs 0 in
  let nint = ref 0 in
  for r = 0 to m.Ir.nregs - 1 do
    if first.(r) >= 0 then begin
      intervals.(!nint) <- r;
      incr nint
    end
  done;
  let intervals = Array.sub intervals 0 !nint in
  Array.sort
    (fun a b ->
      let c = Int.compare first.(a) first.(b) in
      if c <> 0 then c else Int.compare a b)
    intervals;
  let vregs = Array.length intervals in
  (* Active list ordered by interval end (kept as a sorted list; methods have
     at most tens of simultaneously live values in practice). *)
  let active = ref [] in
  let max_pressure = ref 0 in
  let spilled = ref 0 in
  let spill_ops = ref 0 in
  let insert_by_end r l =
    let rec go = function
      | x :: rest when last.(x) <= last.(r) -> x :: go rest
      | rest -> r :: rest
    in
    go l
  in
  Array.iter
    (fun r ->
      (* Expire intervals that ended before this one starts. *)
      active := List.filter (fun x -> last.(x) >= first.(r)) !active;
      if List.length !active >= phys_regs then begin
        (* Spill the interval with the furthest end (it blocks the longest). *)
        match List.rev !active with
        | victim :: _ when last.(victim) > last.(r) ->
          active := insert_by_end r (List.filter (fun x -> x <> victim) !active);
          incr spilled;
          spill_ops := !spill_ops + count.(victim)
        | _ ->
          incr spilled;
          spill_ops := !spill_ops + count.(r)
      end
      else active := insert_by_end r !active;
      max_pressure := max !max_pressure (List.length !active + !spilled))
    intervals;
  { vregs; max_pressure = (if vregs = 0 then 0 else max !max_pressure 1); spilled = !spilled; spill_ops = !spill_ops }

(* Per-block-execution spill surcharge for the interpreter: total spill
   traffic spread across the method's blocks, scaled by the platform's
   memory cost. *)
let block_spill_cost (plat : Platform.t) m result =
  if result.spilled = 0 then 0
  else
    let nblocks = max 1 (Array.length m.Ir.blocks) in
    max 1 (result.spill_ops * plat.Platform.cost_mem / nblocks)
