(** Online profile data for the adaptive optimization system: per-method
    invocation counts, timer-style samples, and per-call-edge counters used
    to classify call sites as hot (the paper's Fig. 4 path).

    Call edges live in two representations: static call sites interned to
    dense ids with flat count arrays (the fast path of the flat
    interpreter), and a hashtable for virtual-dispatch edges and the
    reference interpreter.  {!edge_count} sums both, so either interpreter
    produces the same observable numbers. *)

type t

(** [create nmethods] — all counters zero. *)
val create : int -> t

val nmethods : t -> int

(** All dynamic calls seen so far (static sites and dynamic edges). *)
val total_calls : t -> int

(** Distinct static call sites interned so far. *)
val interned_sites : t -> int

val record_invocation : t -> int -> unit

(** [record_call t ~site_owner ~callee] bumps the edge counter (hashtable
    path, used by the reference interpreter). *)
val record_call : t -> site_owner:int -> callee:int -> unit

(** Same counter as {!record_call}; the flat interpreter's entry point for
    virtual dispatch, which also surfaces fresh dynamic edges as the
    [vm.dynamic_edges] counter. *)
val record_call_dynamic : t -> site_owner:int -> callee:int -> unit

(** [intern t ~site_owner ~callee] returns the dense site id for a static
    call edge, creating it on first sight (lowering-time only). *)
val intern : t -> site_owner:int -> callee:int -> int

(** [record_site t sid] bumps the interned site counter — the flat
    interpreter's per-call fast path.  [sid] must come from {!intern}. *)
val record_site : t -> int -> unit

val record_sample : t -> int -> unit
val samples : t -> int -> int
val invocations : t -> int -> int

(** Combined count for an edge: interned static sites plus dynamic edges. *)
val edge_count : t -> site_owner:int -> callee:int -> int

(** [hot_site t ~fraction ~floor ~site_owner ~callee]: the edge carries at
    least [fraction] of all dynamic calls seen so far, with an absolute
    [floor] for early promotion decisions. *)
val hot_site : t -> fraction:float -> floor:int -> site_owner:int -> callee:int -> bool

(** The [n] methods with the most samples, hottest first. *)
val hottest : t -> int -> int list
