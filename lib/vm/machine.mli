open Inltune_jir
open Inltune_opt

(** The virtual machine: a cycle-counting interpreter over compiled JIR plus
    the adaptive optimization system.  See the implementation header for the
    cycle-accounting rules. *)

(** Memory-safety or dispatch violation during interpretation. *)
exception Trap of string

(** The per-iteration step budget ran out. *)
exception Out_of_fuel

(** Select the tree-walking reference interpreter instead of the flat
    dispatch loop (also settable via [INLTUNE_VM_REFERENCE=1] in the
    environment).  Both interpreters are bit-identical on every observable:
    cycles, steps, out_hash, outputs, profile state, recompilation points. *)
val set_reference : bool -> unit

val reference_enabled : unit -> bool

type scenario =
  | Opt     (** optimize every method on first invocation *)
  | Adapt   (** baseline first; hot methods promoted to the optimizer *)
  | Ladder  (** extension: staged baseline -> O1 -> O2 recompilation *)

val scenario_name : scenario -> string

type config = {
  scenario : scenario;
  heuristic : Heuristic.t;
  inline_enabled : bool;          (** false = the Fig. 1 no-inlining baseline *)
  optimize : bool;                (** false = ablation: no dataflow passes *)
  icache_enabled : bool;          (** false = ablation: no bloat penalty *)
  hot_path_enabled : bool;        (** false = ablation: no Fig. 4 hot path *)
  guarded_devirt_enabled : bool;  (** false = ablation: no PIC guards *)
  custom_inliner : Pipeline.site_decision option;
      (** per-site decision override (e.g. the knapsack oracle) *)
  policy_factory : (Profile.t -> Policy.t) option;
      (** first-class inlining policy, rebuilt against the VM's live profile
          at each (re)compile so feature-driven policies see current
          call-edge hotness; [custom_inliner] wins if both are set *)
  plan : Plan.t;
      (** optimizing-tier pass schedule (default {!Plan.default}); the
          [inline_enabled] / [optimize] ablations apply on top as plan
          edits at each compile *)
  fuel : int;                     (** interpreter step budget per iteration *)
}

(** Build a configuration; every optional defaults to the paper's setup. *)
val config :
  ?inline_enabled:bool ->
  ?optimize:bool ->
  ?icache_enabled:bool ->
  ?hot_path_enabled:bool ->
  ?guarded_devirt_enabled:bool ->
  ?custom_inliner:Pipeline.site_decision ->
  ?policy_factory:(Profile.t -> Policy.t) ->
  ?plan:Plan.t ->
  ?fuel:int ->
  scenario ->
  Heuristic.t ->
  config

type t = {
  prog : Ir.program;
  plat : Platform.t;
  cfg : config;
  icache : Icache.t;
  codespace : Codespace.t;
  compiled : Compile.compiled option array;
  profile : Profile.t;
  mutable heap : int array;
  mutable heap_len : int;
  mutable exec_cycles : int;
  mutable compile_cycles : int;
  mutable steps : int;
  mutable fuel_left : int;
  mutable next_sample_at : int;
  mutable out_hash : int;
  outputs : int Inltune_support.Vec.t;
  mutable opt_compiles : int;
  mutable o1_compiles : int;
  mutable baseline_compiles : int;
  mutable call_depth : int;
  frames : Lower.code Inltune_support.Frames.t;
      (** reusable register windows for the flat interpreter *)
  mutable frames_reused : int;
      (** frame pushes served without growing the pool; flushed to the
          [vm.frames_reused] counter once per iteration *)
  mutable compile_wall_s : float;
      (** wall seconds inside the compilers, accumulated only while
          {!Inltune_obs.Prof} is enabled; profiler bookkeeping, never part
          of cycle accounting *)
}

(** Simulated call-stack depth limit (exceeding it is a {!Trap}). *)
val max_call_depth : int

(** Fresh VM over a validated program; raises on an ill-formed program. *)
val create : config -> Platform.t -> Ir.program -> t

(** Run [callee] with the given arguments inside the VM (compiling lazily as
    the scenario dictates).  Exposed for tests; normal use is
    {!run_iteration}. *)
val exec : t -> Ir.mid -> int array -> int

type iteration = {
  ret : int;
  it_exec_cycles : int;
  it_compile_cycles : int;
  it_steps : int;
  it_out_hash : int;
  it_outputs : int array;
}

(** One run of [main].  Compiled code, profile, and I-cache state persist
    across iterations (the warming VM); the heap and the output log are
    fresh per iteration. *)
val run_iteration : t -> iteration

val opt_compiles : t -> int
val o1_compiles : t -> int
val baseline_compiles : t -> int
val code_bytes : t -> int
val icache_misses : t -> int
val icache_accesses : t -> int
val profile : t -> Profile.t
val compiled_method : t -> Ir.mid -> Compile.compiled option
