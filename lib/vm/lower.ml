open Inltune_jir

(* Compile-once lowering of a method to a flat int-coded instruction stream.

   The tree-walking interpreter pays for boxed [Ir.instr] variants, a cost
   computation and an icache-address computation per executed instruction,
   and block-offset lookups per block.  Lowering pays all of that once per
   compile instead:

   - blocks are flattened into one stream; every block contributes a
     synthetic ENTER op (per-block fuel and spill-cost accounting) followed
     by its instructions and its terminator, and branch targets are resolved
     to the flat pc of the target block's ENTER;
   - each executed instruction's simulated cost (tier quality multiplier
     times the platform instruction cost) and icache address are precomputed;
   - static call sites are interned into dense {!Profile} site ids, so the
     interpreter's per-call profile update is one array increment;
   - the stream is packed into two words per instruction — [opc] carries the
     opcode in the low 8 bits with the precomputed cost above it, and [args]
     carries the three operand fields at 21 bits each — plus the icache
     address, so one executed step streams three array slots instead of six.
     Variable-length call argument lists and constant-pool values (a program
     constant can be any int, so it cannot live in a 21-bit field) are
     spilled into an [extra] pool.

   The lowering also re-validates every register, block target, operand
   field width, and callee id against the method being lowered, which is
   what licenses the unsafe array accesses in the flat interpreter's hot
   loop (pipeline output is not otherwise runtime-validated). *)

(* Opcode encoding.  [Machine]'s dispatch loop matches on these values as
   integer literals (OCaml patterns cannot name constants), and asserts at
   module init that the two stay in sync.

    0 const      x=dst  y=extra index of the value
    1 move       x=dst  y=src
    2..11 binop  x=dst  y=lhs  z=rhs   (add sub mul div mod and or xor shl shr)
   12..17 cmp    x=dst  y=lhs  z=rhs   (lt le eq ne gt ge)
   18 load       x=dst  y=obj  z=off
   19 store      x=obj  y=off  z=src
   20 loadidx    x=dst  y=obj  z=idx
   21 storeidx   x=obj  y=idx  z=src
   22 classof    x=dst  y=obj
   23 alloc      x=dst  y=kid  z=slots
   24 print      x=src
   25 call       x=dst  y=callee  z=extra offset -> [site id; nargs; args...]
   26 callvirt   x=dst  y=slot    z=extra offset -> [recv; nargs; args...]
   27 enter      (block entry: fuel + spill cost; never icache-touched)
   28 jump       x=target pc
   29 branch     x=cond  y=then pc  z=else pc
   30 ret        x=src *)

let op_const = 0
let op_move = 1
let op_binop_base = 2   (* + binop index, Add..Shr *)
let op_cmp_base = 12    (* + cmpop index, Lt..Ge *)
let op_load = 18
let op_store = 19
let op_loadidx = 20
let op_storeidx = 21
let op_classof = 22
let op_alloc = 23
let op_print = 24
let op_last_plain = 24  (* ops <= this share the plain-instruction prologue *)
let op_call = 25
let op_callvirt = 26
let op_enter = 27
let op_jump = 28
let op_branch = 29
let op_ret = 30

(* Operand fields are 21 bits: x | y<<21 | z<<42 fills the 63-bit int.
   Registers, flat pcs, extra-pool offsets, field offsets, callee and class
   ids all stay far below 2^21 for any body the pipeline's growth budget
   admits; [lower] rejects anything wider rather than truncating. *)
let field_bits = 21
let field_mask = (1 lsl field_bits) - 1

type code = {
  opc : int array;     (* opcode (low 8 bits) | (quality * platform cost) << 8 *)
  args : int array;    (* x | y << 21 | z << 42 *)
  iaddrs : int array;  (* icache address, precomputed *)
  extra : int array;   (* call operand pool and constant pool *)
  nregs : int;
  spill : int;         (* per-executed-block spill cost *)
}

(* Placeholder for unused frame-pool slots; never executed. *)
let dummy = { opc = [||]; args = [||]; iaddrs = [||]; extra = [||]; nregs = 0; spill = 0 }

let binop_code = function
  | Ir.Add -> 2 | Ir.Sub -> 3 | Ir.Mul -> 4 | Ir.Div -> 5 | Ir.Mod -> 6
  | Ir.And -> 7 | Ir.Or -> 8 | Ir.Xor -> 9 | Ir.Shl -> 10 | Ir.Shr -> 11

let cmpop_code = function
  | Ir.Lt -> 12 | Ir.Le -> 13 | Ir.Eq -> 14 | Ir.Ne -> 15 | Ir.Gt -> 16 | Ir.Ge -> 17

let lower ~(plat : Platform.t) ~profile ~owner ~quality ~addr ~bytes_per_instr ~spill
    (m : Ir.methd) =
  let blocks = m.Ir.blocks in
  let nblocks = Array.length blocks in
  let nregs = m.Ir.nregs in
  let bad what = invalid_arg (Printf.sprintf "Lower.lower: %s in %s" what m.Ir.mname) in
  let reg r = if r < 0 || r >= nregs then bad "register out of range"; r in
  let field v = if v < 0 || v > field_mask then bad "operand field out of range"; v in
  (* Flat pc of each block's ENTER, plus stream and extra-pool sizes. *)
  let starts = Array.make (max 1 nblocks) 0 in
  let len = ref 0 and nextra = ref 0 in
  for bi = 0 to nblocks - 1 do
    starts.(bi) <- !len;
    let instrs = blocks.(bi).Ir.instrs in
    len := !len + Array.length instrs + 2;
    Array.iter
      (function
        | Ir.Call (_, _, args) | Ir.CallVirt (_, _, _, args) ->
          nextra := !nextra + 2 + Array.length args
        | Ir.Const _ -> incr nextra
        | _ -> ())
      instrs
  done;
  let n = !len in
  let opc = Array.make n 0
  and args = Array.make n 0
  and iaddrs = Array.make n 0
  and extra = Array.make (max 1 !nextra) 0 in
  let target l = if l < 0 || l >= nblocks then bad "block target out of range"; starts.(l) in
  let pc = ref 0 and eoff = ref 0 in
  (* [ioff] mirrors the tree-walker's instruction-index offsets exactly:
     instruction k of block bi sits at block_offsets.(bi) + k and the
     terminator at block_offsets.(bi) + n, where consecutive blocks are
     n + 1 indices apart (ENTER ops occupy no icache index). *)
  let ioff = ref 0 in
  let emit op x y z cost =
    opc.(!pc) <- op lor (cost lsl 8);
    args.(!pc) <- field x lor (field y lsl field_bits) lor (field z lsl (2 * field_bits));
    iaddrs.(!pc) <- addr + (!ioff * bytes_per_instr);
    incr pc;
    incr ioff
  in
  let spill_args call_args =
    let o = !eoff in
    extra.(o + 1) <- Array.length call_args;
    Array.iteri (fun j r -> extra.(o + 2 + j) <- reg r) call_args;
    eoff := o + 2 + Array.length call_args;
    o
  in
  for bi = 0 to nblocks - 1 do
    let blk = blocks.(bi) in
    assert (!pc = starts.(bi));
    opc.(!pc) <- op_enter;
    incr pc;
    Array.iter
      (fun i ->
        let cost = quality * Platform.instr_cost plat i in
        match i with
        | Ir.Const (d, v) ->
          let o = !eoff in
          extra.(o) <- v;
          eoff := o + 1;
          emit op_const (reg d) o 0 cost
        | Ir.Move (d, s) -> emit op_move (reg d) (reg s) 0 cost
        | Ir.Binop (op, d, a, b) -> emit (binop_code op) (reg d) (reg a) (reg b) cost
        | Ir.Cmp (op, d, a, b) -> emit (cmpop_code op) (reg d) (reg a) (reg b) cost
        | Ir.Load (d, o, off) -> emit op_load (reg d) (reg o) off cost
        | Ir.Store (o, off, s) -> emit op_store (reg o) off (reg s) cost
        | Ir.LoadIdx (d, o, idx) -> emit op_loadidx (reg d) (reg o) (reg idx) cost
        | Ir.StoreIdx (o, idx, s) -> emit op_storeidx (reg o) (reg idx) (reg s) cost
        | Ir.ClassOf (d, o) -> emit op_classof (reg d) (reg o) 0 cost
        | Ir.Alloc (d, kid, slots) -> emit op_alloc (reg d) kid slots cost
        | Ir.Print r -> emit op_print (reg r) 0 0 cost
        | Ir.Call (d, callee, call_args) ->
          let o = spill_args call_args in
          extra.(o) <- Profile.intern profile ~site_owner:owner ~callee;
          emit op_call (reg d) callee o cost
        | Ir.CallVirt (d, slot, recv, call_args) ->
          let o = spill_args call_args in
          extra.(o) <- reg recv;
          emit op_callvirt (reg d) slot o cost)
      blk.Ir.instrs;
    let tcost = quality * Platform.term_cost plat blk.Ir.term in
    (match blk.Ir.term with
    | Ir.Jump l -> emit op_jump (target l) 0 0 tcost
    | Ir.Branch (c, t, f) -> emit op_branch (reg c) (target t) (target f) tcost
    | Ir.Ret r -> emit op_ret (reg r) 0 0 tcost)
  done;
  assert (!pc = n);
  { opc; args; iaddrs; extra; nregs; spill }
