(* Online profile data gathered by the adaptive optimization system:
   per-method invocation counts and timer-style samples, plus per-call-edge
   counters used to classify call sites as hot when a method is recompiled
   (the Fig. 4 heuristic path).

   Call-edge counters live in two representations with one combined view:
   - static call sites are interned at lowering time to a dense site id and
     counted in a flat int array (one unsafe increment per executed call);
   - virtual-dispatch edges, whose callee is only known at run time, stay in
     a hashtable keyed by (owner * nmethods + callee).
   [edge_count] sums both, so the reference interpreter (which routes every
   call through the hashtable) and the flat interpreter agree on every
   observable number. *)

module Metric = Inltune_obs.Metric

type t = {
  nmethods : int;
  invocations : int array;
  samples : int array;
  edges : (int, int) Hashtbl.t;  (* (owner * nmethods + callee) -> calls *)
  site_ids : (int, int) Hashtbl.t;  (* (owner * nmethods + callee) -> site id *)
  mutable site_keys : int array;    (* site id -> edge key *)
  mutable site_counts : int array;  (* site id -> calls *)
  mutable nsites : int;
  mutable total_calls : int;
}

let create nmethods =
  {
    nmethods;
    invocations = Array.make nmethods 0;
    samples = Array.make nmethods 0;
    edges = Hashtbl.create 256;
    site_ids = Hashtbl.create 64;
    site_keys = Array.make 64 0;
    site_counts = Array.make 64 0;
    nsites = 0;
    total_calls = 0;
  }

let nmethods t = t.nmethods
let total_calls t = t.total_calls
let interned_sites t = t.nsites

let record_invocation t mid = t.invocations.(mid) <- t.invocations.(mid) + 1

let record_call t ~site_owner ~callee =
  t.total_calls <- t.total_calls + 1;
  let key = (site_owner * t.nmethods) + callee in
  match Hashtbl.find_opt t.edges key with
  | Some n -> Hashtbl.replace t.edges key (n + 1)
  | None -> Hashtbl.add t.edges key 1

(* Same hashtable as [record_call]; the flat interpreter uses this entry
   point for virtual dispatch so fresh dynamic edges are observable. *)
let record_call_dynamic t ~site_owner ~callee =
  t.total_calls <- t.total_calls + 1;
  let key = (site_owner * t.nmethods) + callee in
  match Hashtbl.find_opt t.edges key with
  | Some n -> Hashtbl.replace t.edges key (n + 1)
  | None ->
    Metric.incr (Metric.counter "vm.dynamic_edges");
    Hashtbl.add t.edges key 1

let intern t ~site_owner ~callee =
  if callee < 0 || callee >= t.nmethods || site_owner < 0 || site_owner >= t.nmethods
  then invalid_arg "Profile.intern: method id out of range";
  let key = (site_owner * t.nmethods) + callee in
  match Hashtbl.find_opt t.site_ids key with
  | Some sid -> sid
  | None ->
    let sid = t.nsites in
    if sid = Array.length t.site_counts then begin
      let n' = 2 * sid in
      let keys = Array.make n' 0 and counts = Array.make n' 0 in
      Array.blit t.site_keys 0 keys 0 sid;
      Array.blit t.site_counts 0 counts 0 sid;
      t.site_keys <- keys;
      t.site_counts <- counts
    end;
    t.site_keys.(sid) <- key;
    t.site_counts.(sid) <- 0;
    t.nsites <- sid + 1;
    Hashtbl.add t.site_ids key sid;
    Metric.incr (Metric.counter "vm.interned_sites");
    sid

(* Hot-loop entry point: [sid] came from [intern], so it is in range. *)
let[@inline] record_site t sid =
  t.total_calls <- t.total_calls + 1;
  let c = t.site_counts in
  Array.unsafe_set c sid (Array.unsafe_get c sid + 1)

let record_sample t mid = t.samples.(mid) <- t.samples.(mid) + 1

let samples t mid = t.samples.(mid)
let invocations t mid = t.invocations.(mid)

let edge_count t ~site_owner ~callee =
  let key = (site_owner * t.nmethods) + callee in
  let dynamic = match Hashtbl.find_opt t.edges key with Some n -> n | None -> 0 in
  let static =
    match Hashtbl.find_opt t.site_ids key with
    | Some sid -> t.site_counts.(sid)
    | None -> 0
  in
  dynamic + static

(* A call site is hot when it carries at least [hot_edge_fraction] of all
   dynamic calls seen so far (with an absolute floor for early promotion). *)
let hot_site t ~fraction ~floor ~site_owner ~callee =
  let threshold = max floor (Float.to_int (fraction *. Float.of_int t.total_calls)) in
  edge_count t ~site_owner ~callee >= threshold

let hottest t n =
  let idx = Array.init (Array.length t.samples) (fun i -> i) in
  Array.sort (fun a b -> compare t.samples.(b) t.samples.(a)) idx;
  Array.to_list (Array.sub idx 0 (min n (Array.length idx)))
