(* The paper's measurement methodology (Section 5): run the benchmark at
   least twice inside one VM.  The first iteration pays for loading,
   compilation and inlining — its cost is *total time*.  Later iterations
   involve (almost) no compilation — the best of them is *running time*. *)

type measurement = {
  total_cycles : int;     (* first iteration: exec + compile *)
  running_cycles : int;   (* best exec-only cycles of the later iterations *)
  first_exec_cycles : int;
  first_compile_cycles : int;
  opt_compiles : int;
  baseline_compiles : int;
  code_bytes : int;
  icache_misses : int;
  icache_accesses : int;
  steps : int;
  ret : int;
  out_hash : int;
}

let measure ?(iterations = 2) cfg plat prog =
  if iterations < 2 then invalid_arg "Runner.measure: need at least 2 iterations";
  let module Prof = Inltune_obs.Prof in
  let sim_start = if Prof.enabled () then Inltune_obs.Trace.now () else 0.0 in
  let vm = Machine.create cfg plat prog in
  (* Each iteration under a "vm.execute" span; lazy compiles inside it show
     up as nested "vm.compile" spans, so execute self-time is interpretation
     proper. *)
  let run_one () = Prof.span "vm.execute" (fun () -> Machine.run_iteration vm) in
  let first = run_one () in
  let best = ref max_int in
  let last_ret = ref first.Machine.ret in
  let last_hash = ref first.Machine.it_out_hash in
  for _ = 2 to iterations do
    let it = run_one () in
    if it.Machine.it_exec_cycles < !best then best := it.Machine.it_exec_cycles;
    last_ret := it.Machine.ret;
    last_hash := it.Machine.it_out_hash
  done;
  let m =
    {
      total_cycles = first.Machine.it_exec_cycles + first.Machine.it_compile_cycles;
      running_cycles = !best;
      first_exec_cycles = first.Machine.it_exec_cycles;
      first_compile_cycles = first.Machine.it_compile_cycles;
      opt_compiles = Machine.opt_compiles vm;
      baseline_compiles = Machine.baseline_compiles vm;
      code_bytes = Machine.code_bytes vm;
      icache_misses = Machine.icache_misses vm;
      icache_accesses = Machine.icache_accesses vm;
      steps = vm.Machine.steps;
      ret = !last_ret;
      out_hash = !last_hash;
    }
  in
  let module Trace = Inltune_obs.Trace in
  let module Event = Inltune_obs.Event in
  if Trace.enabled () then
    Trace.emit "vm.measure"
      ~fields:
        [
          ("prog", Event.Str prog.Inltune_jir.Ir.pname);
          ("scenario", Event.Str (Machine.scenario_name cfg.Machine.scenario));
          ("total_cycles", Event.Int m.total_cycles);
          ("running_cycles", Event.Int m.running_cycles);
          ("compile_cycles", Event.Int m.first_compile_cycles);
          ("opt_compiles", Event.Int m.opt_compiles);
          ("baseline_compiles", Event.Int m.baseline_compiles);
          ("code_bytes", Event.Int m.code_bytes);
          ("icache_misses", Event.Int m.icache_misses);
          ("icache_accesses", Event.Int m.icache_accesses);
        ];
  (* Per-simulation host-cost breakdown: where this simulation's wall time
     went.  compile comes from the VM's Prof-fed accumulator; the icache
     model's share is estimated from access count x calibrated per-access
     cost.  All of it is observability-side — the measurement record above
     is bit-identical with profiling on or off. *)
  if Inltune_obs.Prof.enabled () then begin
    let wall = Trace.now () -. sim_start in
    let compile = vm.Machine.compile_wall_s in
    let execute = Float.max 0.0 (wall -. compile) in
    let icache_model = Float.of_int m.icache_accesses *. Icache.ns_per_access () /. 1e9 in
    Inltune_obs.Metric.observe (Inltune_obs.Metric.histogram "vm.sim_wall_us") (wall *. 1e6);
    if Trace.enabled () then
      Trace.emit "vm.breakdown"
        ~fields:
          [
            ("prog", Event.Str prog.Inltune_jir.Ir.pname);
            ("scenario", Event.Str (Machine.scenario_name cfg.Machine.scenario));
            ("wall_us", Event.Float (wall *. 1e6));
            ("compile_us", Event.Float (compile *. 1e6));
            ("execute_us", Event.Float (execute *. 1e6));
            ("icache_model_us", Event.Float (icache_model *. 1e6));
          ]
  end;
  m

(* Pure semantic run: interpret the program once with everything that could
   perturb observable behaviour disabled (Opt scenario, chosen heuristic) and
   return what it computed.  Used by the semantics-preservation tests. *)
let observe ?(fuel = 100_000_000) ?(heuristic = Inltune_opt.Heuristic.never) plat prog =
  let cfg = Machine.config ~fuel Machine.Opt heuristic in
  let vm = Machine.create cfg plat prog in
  let it = Machine.run_iteration vm in
  (it.Machine.ret, it.Machine.it_outputs)
