(* The paper's measurement methodology (Section 5): run the benchmark at
   least twice inside one VM.  The first iteration pays for loading,
   compilation and inlining — its cost is *total time*.  Later iterations
   involve (almost) no compilation — the best of them is *running time*. *)

type measurement = {
  total_cycles : int;     (* first iteration: exec + compile *)
  running_cycles : int;   (* best exec-only cycles of the later iterations *)
  first_exec_cycles : int;
  first_compile_cycles : int;
  opt_compiles : int;
  baseline_compiles : int;
  code_bytes : int;
  icache_misses : int;
  icache_accesses : int;
  steps : int;
  ret : int;
  out_hash : int;
}

let measure ?(iterations = 2) cfg plat prog =
  if iterations < 2 then invalid_arg "Runner.measure: need at least 2 iterations";
  let vm = Machine.create cfg plat prog in
  let first = Machine.run_iteration vm in
  let best = ref max_int in
  let last_ret = ref first.Machine.ret in
  let last_hash = ref first.Machine.it_out_hash in
  for _ = 2 to iterations do
    let it = Machine.run_iteration vm in
    if it.Machine.it_exec_cycles < !best then best := it.Machine.it_exec_cycles;
    last_ret := it.Machine.ret;
    last_hash := it.Machine.it_out_hash
  done;
  let m =
    {
      total_cycles = first.Machine.it_exec_cycles + first.Machine.it_compile_cycles;
      running_cycles = !best;
      first_exec_cycles = first.Machine.it_exec_cycles;
      first_compile_cycles = first.Machine.it_compile_cycles;
      opt_compiles = Machine.opt_compiles vm;
      baseline_compiles = Machine.baseline_compiles vm;
      code_bytes = Machine.code_bytes vm;
      icache_misses = Machine.icache_misses vm;
      icache_accesses = Machine.icache_accesses vm;
      steps = vm.Machine.steps;
      ret = !last_ret;
      out_hash = !last_hash;
    }
  in
  let module Trace = Inltune_obs.Trace in
  let module Event = Inltune_obs.Event in
  if Trace.enabled () then
    Trace.emit "vm.measure"
      ~fields:
        [
          ("prog", Event.Str prog.Inltune_jir.Ir.pname);
          ("scenario", Event.Str (Machine.scenario_name cfg.Machine.scenario));
          ("total_cycles", Event.Int m.total_cycles);
          ("running_cycles", Event.Int m.running_cycles);
          ("compile_cycles", Event.Int m.first_compile_cycles);
          ("opt_compiles", Event.Int m.opt_compiles);
          ("baseline_compiles", Event.Int m.baseline_compiles);
          ("code_bytes", Event.Int m.code_bytes);
          ("icache_misses", Event.Int m.icache_misses);
          ("icache_accesses", Event.Int m.icache_accesses);
        ];
  m

(* Pure semantic run: interpret the program once with everything that could
   perturb observable behaviour disabled (Opt scenario, chosen heuristic) and
   return what it computed.  Used by the semantics-preservation tests. *)
let observe ?(fuel = 100_000_000) ?(heuristic = Inltune_opt.Heuristic.never) plat prog =
  let cfg = Machine.config ~fuel Machine.Opt heuristic in
  let vm = Machine.create cfg plat prog in
  let it = Machine.run_iteration vm in
  (it.Machine.ret, it.Machine.it_outputs)
