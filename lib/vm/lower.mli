open Inltune_jir

(** Compile-once lowering of a method to a flat int-coded instruction
    stream: blocks flattened behind synthetic ENTER ops, branch targets
    resolved to flat pcs, per-instruction simulated cost and icache address
    precomputed, static call sites interned to dense {!Profile} site ids,
    and call argument lists packed into an [extra] pool.  See the
    implementation header for the opcode encoding. *)

type code = {
  opc : int array;
      (** opcode in the low 8 bits, precomputed quality * platform cost
          above them *)
  args : int array;
      (** operands packed x | y << 21 | z << 42 (21-bit fields; [lower]
          rejects anything wider) *)
  iaddrs : int array;  (** icache address, precomputed *)
  extra : int array;
      (** call operand pool ([site id|recv; nargs; args...]) and constant
          pool (const's y field indexes its full-width value here) *)
  nregs : int;
  spill : int;         (** per-executed-block spill cost *)
}

(** Placeholder for unused frame-pool slots; never executed. *)
val dummy : code

(** Width of one packed operand field in [args], and its mask. *)

val field_bits : int
val field_mask : int

(** Opcode values; {!Machine}'s dispatch matches on the literals and asserts
    they agree with these. *)

val op_const : int
val op_move : int
val op_binop_base : int
val op_cmp_base : int
val op_load : int
val op_store : int
val op_loadidx : int
val op_storeidx : int
val op_classof : int
val op_alloc : int
val op_print : int
val op_last_plain : int
val op_call : int
val op_callvirt : int
val op_enter : int
val op_jump : int
val op_branch : int
val op_ret : int

(** [lower ~plat ~profile ~owner ~quality ~addr ~bytes_per_instr ~spill m]
    flattens [m] (the code a tier is about to install).  [owner] is the
    method id call sites are attributed to; [quality], [addr],
    [bytes_per_instr], and [spill] come from the tier's {!Compile.compiled}
    record.  Re-validates registers, block targets, and callee ids, which
    licenses the interpreter's unsafe array accesses; raises
    [Invalid_argument] on malformed code. *)
val lower :
  plat:Platform.t ->
  profile:Profile.t ->
  owner:int ->
  quality:int ->
  addr:int ->
  bytes_per_instr:int ->
  spill:int ->
  Ir.methd ->
  code
