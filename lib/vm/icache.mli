(** Direct-mapped instruction-cache simulator.

    The representation is exposed so the flat interpreter can fold the
    per-instruction tag probe into its dispatch loop ({!access} is one call
    per simulated instruction, which dominates its cost).  Treat the fields
    as read-only outside this module and [Machine]. *)

type t = {
  tags : int array;  (** -1 = invalid *)
  line_bits : int;
  index_mask : int;
  mutable accesses : int;
  mutable misses : int;
}

(** [create ~bytes ~line_bytes] — both must make the line count a power of
    two. *)
val create : bytes:int -> line_bytes:int -> t

(** [access t addr] touches the line containing [addr]; true means miss. *)
val access : t -> int -> bool

val miss_rate : t -> float
val reset_counters : t -> unit
val accesses : t -> int
val misses : t -> int

(** Calibrated host wall-clock cost of one {!access} call in nanoseconds
    (lazily measured once on a scratch cache).  Used by the profiler to
    estimate the icache model's share of simulation time; never feeds back
    into simulated cycle counts. *)
val ns_per_access : unit -> float
