(* Direct-mapped instruction-cache simulator.

   The interpreter touches the cache once per simulated instruction with the
   instruction's code address; a tag mismatch is a miss and costs the
   platform's miss penalty.  This is the mechanism that makes over-aggressive
   inlining *hurt* running time: bloated hot code stops fitting and the depth
   sweeps of Fig. 2 turn non-monotonic. *)

type t = {
  tags : int array;     (* -1 = invalid *)
  line_bits : int;
  index_mask : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

let create ~bytes ~line_bytes =
  if bytes <= 0 || line_bytes <= 0 then invalid_arg "Icache.create";
  if line_bytes land (line_bytes - 1) <> 0 then invalid_arg "Icache.create: line size not a power of two";
  let nlines = max 1 (bytes / line_bytes) in
  if nlines land (nlines - 1) <> 0 then invalid_arg "Icache.create: line count not a power of two";
  {
    tags = Array.make nlines (-1);
    line_bits = log2 line_bytes;
    index_mask = nlines - 1;
    accesses = 0;
    misses = 0;
  }

(* Returns true on a miss (and installs the line). *)
let access t addr =
  t.accesses <- t.accesses + 1;
  let line = addr lsr t.line_bits in
  let idx = line land t.index_mask in
  if t.tags.(idx) = line then false
  else begin
    t.tags.(idx) <- line;
    t.misses <- t.misses + 1;
    true
  end

let miss_rate t =
  if t.accesses = 0 then 0.0 else Float.of_int t.misses /. Float.of_int t.accesses

let reset_counters t =
  t.accesses <- 0;
  t.misses <- 0

let accesses t = t.accesses
let misses t = t.misses

(* Calibrated host cost of one [access] call, for the profiler's breakdown
   of where simulation wall time goes.  Lazily measured on a scratch cache;
   a racing double calibration is harmless (both writes are close enough).
   Timed with the monotonic Pool clock — a wall-clock step (NTP, DST) during
   calibration would otherwise bake a garbage per-access cost into every
   breakdown for the life of the process.  Profiler bookkeeping only — this
   never feeds back into simulated cycles. *)
let calibrated_ns = Atomic.make Float.nan

let ns_per_access () =
  let v = Atomic.get calibrated_ns in
  if Float.is_finite v then v
  else begin
    let scratch = create ~bytes:16384 ~line_bytes:64 in
    let reps = 200_000 in
    let t0 = Inltune_support.Pool.now () in
    for i = 0 to reps - 1 do
      ignore (access scratch (i * 48) : bool)
    done;
    let ns = (Inltune_support.Pool.now () -. t0) *. 1e9 /. Float.of_int reps in
    let ns = Float.max 0.0 ns in
    Atomic.set calibrated_ns ns;
    ns
  end
