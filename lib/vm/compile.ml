open Inltune_jir
open Inltune_opt

(* The two compiler tiers.

   Baseline: no transformation at all (bytecode is executed as-is) but the
   code runs with a quality penalty and occupies more space — fast to
   compile, slow to run, exactly Jikes RVM's non-optimizing compiler.

   Optimizing: runs the full [Pipeline] (devirtualize, inline under the
   heuristic, fold, DCE) and charges compile cycles that grow superlinearly
   with the post-inlining IR size, which is what makes CALLER_MAX_SIZE = 2048
   "overly aggressive" on compile-heavy workloads, as the paper observes. *)

type tier = Baseline | O1 | Optimized

type compiled = {
  tier : tier;
  code : Ir.methd;
  flat : Lower.code;          (* lowered stream the flat interpreter runs *)
  addr : int;
  code_bytes : int;
  bytes_per_instr : int;
  block_offsets : int array;  (* instr-index offset of each block *)
  quality : int;              (* per-instruction cost multiplier *)
  block_spill_cost : int;     (* cycles per executed block for spill traffic *)
  spills : int;               (* intervals spilled by the register allocator *)
}

let block_offsets m =
  let n = Array.length m.Ir.blocks in
  let offsets = Array.make n 0 in
  let acc = ref 0 in
  for bi = 0 to n - 1 do
    offsets.(bi) <- !acc;
    acc := !acc + Array.length m.Ir.blocks.(bi).Ir.instrs + 1
  done;
  offsets

(* Baseline code keeps everything in memory anyway (its quality multiplier
   already reflects that), so no extra spill surcharge. *)
let baseline (plat : Platform.t) codespace ~profile m =
  let size = Size.of_method m in
  let code_bytes = Size.code_bytes ~expansion:plat.Platform.baseline_expansion m in
  let addr = Codespace.alloc codespace code_bytes in
  let instrs = max 1 (Ir.instr_count m) in
  let bytes_per_instr = max 1 (code_bytes / instrs) in
  let quality = plat.Platform.baseline_quality in
  let c =
    {
      tier = Baseline;
      code = m;
      flat =
        Lower.lower ~plat ~profile ~owner:m.Ir.mid ~quality ~addr ~bytes_per_instr
          ~spill:0 m;
      addr;
      code_bytes;
      bytes_per_instr;
      block_offsets = block_offsets m;
      quality;
      block_spill_cost = 0;
      spills = 0;
    }
  in
  (c, Platform.baseline_compile_cycles plat ~size)

(* The mid tier: dataflow optimizations without inlining — cheap linear
   compile time, decent code.  Used by the multi-level ladder scenario. *)
let o1 (plat : Platform.t) codespace program ~profile m =
  let code, _stats = Pipeline.run program Pipeline.no_inline_config m in
  let size = Size.of_method m in
  let code_bytes = Size.code_bytes ~expansion:plat.Platform.o1_expansion code in
  let addr = Codespace.alloc codespace code_bytes in
  let instrs = max 1 (Ir.instr_count code) in
  let ra = Regalloc.run ~phys_regs:plat.Platform.phys_regs code in
  let bytes_per_instr = max 1 (code_bytes / instrs) in
  let quality = plat.Platform.o1_quality in
  let block_spill_cost = Regalloc.block_spill_cost plat code ra in
  let c =
    {
      tier = O1;
      code;
      flat =
        Lower.lower ~plat ~profile ~owner:m.Ir.mid ~quality ~addr ~bytes_per_instr
          ~spill:block_spill_cost code;
      addr;
      code_bytes;
      bytes_per_instr;
      block_offsets = block_offsets code;
      quality;
      block_spill_cost;
      spills = ra.Regalloc.spilled;
    }
  in
  (c, Platform.o1_compile_cycles plat ~size)

let optimizing (plat : Platform.t) codespace program config ~profile m =
  let code, stats = Pipeline.run program config m in
  let code_bytes = Size.code_bytes ~expansion:plat.Platform.opt_expansion code in
  let addr = Codespace.alloc codespace code_bytes in
  let instrs = max 1 (Ir.instr_count code) in
  let ra = Regalloc.run ~phys_regs:plat.Platform.phys_regs code in
  let bytes_per_instr = max 1 (code_bytes / instrs) in
  let block_spill_cost = Regalloc.block_spill_cost plat code ra in
  let c =
    {
      tier = Optimized;
      code;
      flat =
        Lower.lower ~plat ~profile ~owner:m.Ir.mid ~quality:1 ~addr ~bytes_per_instr
          ~spill:block_spill_cost code;
      addr;
      code_bytes;
      bytes_per_instr;
      block_offsets = block_offsets code;
      quality = 1;
      block_spill_cost;
      spills = ra.Regalloc.spilled;
    }
  in
  (c, Platform.opt_compile_cycles plat ~size_peak:stats.Pipeline.size_peak, stats)
