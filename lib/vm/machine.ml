open Inltune_jir
open Inltune_opt
module Trace = Inltune_obs.Trace
module Event = Inltune_obs.Event
module Prof = Inltune_obs.Prof

(* The virtual machine: a cycle-counting interpreter over compiled JIR plus
   the adaptive optimization system.

   Compilation is lazy, on first invocation of a method, as in Jikes RVM:
   - Opt scenario: every method is compiled by the optimizing compiler
     (pipeline with the static heuristic; no hot-call-site path);
   - Adapt scenario: methods start baseline-compiled; a deterministic
     cycle-driven sampler attributes samples to the executing method, and a
     method that accumulates enough samples is recompiled by the optimizing
     compiler, at which point profiled call edges classify sites as hot for
     the Fig. 4 heuristic path.

   Cycle accounting: [exec_cycles] is pure interpretation (instruction costs
   scaled by the tier's code-quality multiplier, plus I-cache miss
   penalties); [compile_cycles] accrues on every compilation.  Both are part
   of "total time"; the second iteration's exec cycles alone are "running
   time", per the paper's methodology. *)

exception Trap of string
exception Out_of_fuel

(* [INLTUNE_VM_REFERENCE=1] selects the tree-walking reference interpreter
   instead of the flat dispatch loop; both must agree on every observable
   bit (the differential suite and check.sh enforce this). *)
let reference_mode =
  ref
    (match Sys.getenv_opt "INLTUNE_VM_REFERENCE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let set_reference b = reference_mode := b
let reference_enabled () = !reference_mode

type scenario =
  | Opt     (* optimize everything on first invocation *)
  | Adapt   (* baseline first, one-step promotion to the optimizer *)
  | Ladder  (* extension: baseline -> O1 -> O2 staged recompilation *)

let scenario_name = function Opt -> "opt" | Adapt -> "adapt" | Ladder -> "ladder"

type config = {
  scenario : scenario;
  heuristic : Heuristic.t;
  inline_enabled : bool;  (* false = the Fig. 1 "no inlining" baseline *)
  optimize : bool;        (* false = ablation: inline without cleanup passes *)
  icache_enabled : bool;  (* false = ablation: no code-bloat penalty *)
  hot_path_enabled : bool; (* false = ablation: Adapt uses only Fig. 3 tests *)
  guarded_devirt_enabled : bool; (* false = ablation: no guarded devirtualization *)
  custom_inliner : Pipeline.site_decision option;
      (* per-site decision override (e.g. the knapsack baseline) *)
  policy_factory : (Profile.t -> Policy.t) option;
      (* first-class inlining policy built against the VM's live profile at
         each (re)compile, so feature-driven policies (lib/policy) see
         current call-edge hotness; [custom_inliner] wins if both are set *)
  plan : Plan.t;          (* optimizing-tier pass schedule *)
  fuel : int;             (* interpreter step budget per iteration *)
}

let config ?(inline_enabled = true) ?(optimize = true) ?(icache_enabled = true)
    ?(hot_path_enabled = true) ?(guarded_devirt_enabled = true) ?custom_inliner
    ?policy_factory ?(plan = Plan.default) ?(fuel = 100_000_000) scenario heuristic =
  {
    scenario;
    heuristic;
    inline_enabled;
    optimize;
    icache_enabled;
    hot_path_enabled;
    guarded_devirt_enabled;
    custom_inliner;
    policy_factory;
    plan;
    fuel;
  }

type t = {
  prog : Ir.program;
  plat : Platform.t;
  cfg : config;
  icache : Icache.t;
  codespace : Codespace.t;
  compiled : Compile.compiled option array;
  profile : Profile.t;
  mutable heap : int array;
  mutable heap_len : int;
  mutable exec_cycles : int;
  mutable compile_cycles : int;
  mutable steps : int;
  mutable fuel_left : int;
  mutable next_sample_at : int;
  mutable out_hash : int;
  outputs : int Inltune_support.Vec.t;
  mutable opt_compiles : int;
  mutable o1_compiles : int;
  mutable baseline_compiles : int;
  mutable call_depth : int;
  frames : Lower.code Inltune_support.Frames.t;
  mutable frames_reused : int;
      (* frame pushes served without growing the pool, flushed to the
         vm.frames_reused counter once per iteration *)
  (* Wall-clock seconds spent inside the compilers, accumulated only while
     Prof is enabled.  Profiler bookkeeping, never part of cycle accounting. *)
  mutable compile_wall_s : float;
}

let max_call_depth = 8_000

let create cfg (plat : Platform.t) prog =
  Validate.check_exn prog;
  {
    prog;
    plat;
    cfg;
    icache = Icache.create ~bytes:plat.Platform.icache_bytes ~line_bytes:plat.Platform.line_bytes;
    codespace = Codespace.create ();
    compiled = Array.make (Array.length prog.Ir.methods) None;
    profile = Profile.create (Array.length prog.Ir.methods);
    heap = Array.make 4096 0;
    heap_len = 0;
    exec_cycles = 0;
    compile_cycles = 0;
    steps = 0;
    fuel_left = cfg.fuel;
    next_sample_at = plat.Platform.sample_interval;
    out_hash = 0;
    outputs = Inltune_support.Vec.create ();
    opt_compiles = 0;
    o1_compiles = 0;
    baseline_compiles = 0;
    call_depth = 0;
    frames = Inltune_support.Frames.create ~dummy:Lower.dummy ();
    frames_reused = 0;
    compile_wall_s = 0.0;
  }

(* --- compilation ------------------------------------------------------- *)

let pipeline_config vm =
  let hot_site =
    match vm.cfg.scenario with
    | Opt -> None
    | (Adapt | Ladder) when not vm.cfg.hot_path_enabled -> None
    | Adapt | Ladder ->
      let plat = vm.plat in
      Some
        (fun ~site_owner ~callee ->
          Profile.hot_site vm.profile ~fraction:plat.Platform.hot_edge_fraction
            ~floor:plat.Platform.hot_edge_min ~site_owner ~callee)
  in
  let devirt_oracle =
    match vm.cfg.scenario with
    | Opt -> None
    | (Adapt | Ladder) when not vm.cfg.guarded_devirt_enabled -> None
    | Adapt | Ladder ->
      Some
        (Guarded_devirt.oracle_of_profile ~program:vm.prog
           ~edge_count:(fun ~site_owner ~callee ->
             Profile.edge_count vm.profile ~site_owner ~callee))
  in
  (* One decider per compile, same precedence the three legacy fields had:
     custom closure over policy over heuristic.  A policy factory is applied
     to the live profile here, so feature-driven policies see current
     call-edge hotness at every (re)compile. *)
  let decider =
    match (vm.cfg.custom_inliner, vm.cfg.policy_factory) with
    | Some decide, _ -> Decider.Custom decide
    | None, Some f -> Decider.Policy (f vm.profile)
    | None, None -> Decider.Heuristic vm.cfg.heuristic
  in
  (* The hot-path strategy's window onto the live profile: same gating as
     [hot_site] — adaptive scenarios only, honoring the hot-path ablation.
     Without it the inline_hot pass is structurally inapplicable. *)
  let profile =
    match vm.cfg.scenario with
    | Opt -> None
    | (Adapt | Ladder) when not vm.cfg.hot_path_enabled -> None
    | Adapt | Ladder ->
      Some
        {
          Hotpath.edge_count =
            (fun ~site_owner ~callee -> Profile.edge_count vm.profile ~site_owner ~callee);
          total_calls = (fun () -> Profile.total_calls vm.profile);
        }
  in
  (* The legacy ablation flags are plan edits: no inlining disables the
     inline item, no optimization disables the dataflow items. *)
  let plan = vm.cfg.plan in
  let plan = if vm.cfg.inline_enabled then plan else Plan.disable "inline" plan in
  let plan = if vm.cfg.optimize then plan else Plan.without_dataflow plan in
  Pipeline.make ~plan ?hot_site ?devirt_oracle ?profile decider

let trace_compile vm mid ~tier ~cycles ~recompile extra (c : Compile.compiled) =
  Trace.emit "vm.compile"
    ~fields:
      ([
         ("prog", Event.Str vm.prog.Ir.pname);
         ("method", Event.Str vm.prog.Ir.methods.(mid).Ir.mname);
         ("tier", Event.Str tier);
         ("cycles", Event.Int cycles);
         ("code_bytes", Event.Int c.Compile.code_bytes);
         ("spills", Event.Int c.Compile.spills);
         ("recompile", Event.Bool recompile);
       ]
      @ extra)

let note_compile_wall vm dt = vm.compile_wall_s <- vm.compile_wall_s +. dt

let compile_opt vm mid =
  let m = vm.prog.Ir.methods.(mid) in
  let recompile = vm.compiled.(mid) <> None in
  let c, cycles, stats =
    Prof.span "vm.compile" ~on_time:(note_compile_wall vm) (fun () ->
        Compile.optimizing vm.plat vm.codespace vm.prog (pipeline_config vm) ~profile:vm.profile m)
  in
  vm.compile_cycles <- vm.compile_cycles + cycles;
  vm.opt_compiles <- vm.opt_compiles + 1;
  vm.compiled.(mid) <- Some c;
  if Trace.enabled () then
    trace_compile vm mid ~tier:"opt" ~cycles ~recompile
      [
        ("size_before", Event.Int stats.Pipeline.size_before);
        ("size_peak", Event.Int stats.Pipeline.size_peak);
        ("size_after", Event.Int stats.Pipeline.size_after);
        ("sites_inlined", Event.Int stats.Pipeline.sites_inlined);
      ]
      c;
  c

let compile_o1 vm mid =
  let recompile = vm.compiled.(mid) <> None in
  let c, cycles =
    Prof.span "vm.compile" ~on_time:(note_compile_wall vm) (fun () ->
        Compile.o1 vm.plat vm.codespace vm.prog ~profile:vm.profile vm.prog.Ir.methods.(mid))
  in
  vm.compile_cycles <- vm.compile_cycles + cycles;
  vm.o1_compiles <- vm.o1_compiles + 1;
  vm.compiled.(mid) <- Some c;
  if Trace.enabled () then trace_compile vm mid ~tier:"o1" ~cycles ~recompile [] c;
  c

let compile_baseline vm mid =
  let recompile = vm.compiled.(mid) <> None in
  let c, cycles =
    Prof.span "vm.compile" ~on_time:(note_compile_wall vm) (fun () ->
        Compile.baseline vm.plat vm.codespace ~profile:vm.profile vm.prog.Ir.methods.(mid))
  in
  vm.compile_cycles <- vm.compile_cycles + cycles;
  vm.baseline_compiles <- vm.baseline_compiles + 1;
  vm.compiled.(mid) <- Some c;
  if Trace.enabled () then trace_compile vm mid ~tier:"baseline" ~cycles ~recompile [] c;
  c

let get_code vm mid =
  match vm.compiled.(mid) with
  | Some c -> c
  | None -> (
    match vm.cfg.scenario with
    | Opt -> compile_opt vm mid
    | Adapt | Ladder -> compile_baseline vm mid)

(* --- adaptive sampling -------------------------------------------------- *)

let maybe_sample vm mid =
  if vm.exec_cycles >= vm.next_sample_at then begin
    vm.next_sample_at <- vm.next_sample_at + vm.plat.Platform.sample_interval;
    match vm.cfg.scenario with
    | Opt -> ()
    | Adapt ->
      Profile.record_sample vm.profile mid;
      if Profile.samples vm.profile mid >= vm.plat.Platform.hot_method_samples then begin
        match vm.compiled.(mid) with
        | Some { Compile.tier = Compile.Baseline; _ } -> ignore (compile_opt vm mid : Compile.compiled)
        | Some _ | None -> ()
      end
    | Ladder ->
      (* Staged recompilation: hot -> O1, very hot -> the full optimizer. *)
      Profile.record_sample vm.profile mid;
      let samples = Profile.samples vm.profile mid in
      let hot = vm.plat.Platform.hot_method_samples in
      (match vm.compiled.(mid) with
      | Some { Compile.tier = Compile.Baseline; _ } when samples >= hot ->
        ignore (compile_o1 vm mid : Compile.compiled)
      | Some { Compile.tier = Compile.O1; _ } when samples >= 3 * hot ->
        ignore (compile_opt vm mid : Compile.compiled)
      | Some _ | None -> ())
  end

(* --- heap ---------------------------------------------------------------- *)

let heap_alloc vm kid slots =
  let need = vm.heap_len + slots + 1 in
  if need > Array.length vm.heap then begin
    let heap' = Array.make (max need (2 * Array.length vm.heap)) 0 in
    Array.blit vm.heap 0 heap' 0 vm.heap_len;
    vm.heap <- heap'
  end;
  let addr = vm.heap_len in
  vm.heap.(addr) <- kid;
  for i = addr + 1 to addr + slots do
    vm.heap.(i) <- 0
  done;
  vm.heap_len <- need;
  addr

let heap_get vm a =
  if a < 0 || a >= vm.heap_len then raise (Trap "heap load out of range");
  vm.heap.(a)

let heap_set vm a v =
  if a < 0 || a >= vm.heap_len then raise (Trap "heap store out of range");
  vm.heap.(a) <- v

(* --- interpreter --------------------------------------------------------- *)

let mix h v =
  let x = h lxor (v * 0x9E3779B1) in
  (x lsl 7) lxor (x lsr 9) lxor x

let rec exec_reference vm mid (args : int array) =
  vm.call_depth <- vm.call_depth + 1;
  if vm.call_depth > max_call_depth then raise (Trap "simulated call stack overflow");
  Profile.record_invocation vm.profile mid;
  let c = get_code vm mid in
  let code = c.Compile.code in
  let regs = Array.make code.Ir.nregs 0 in
  Array.blit args 0 regs 0 (Array.length args);
  let plat = vm.plat in
  let q = c.Compile.quality in
  let icache_on = vm.cfg.icache_enabled in
  let miss_penalty = plat.Platform.miss_penalty in
  let touch off =
    if icache_on && Icache.access vm.icache (c.Compile.addr + (off * c.Compile.bytes_per_instr))
    then vm.exec_cycles <- vm.exec_cycles + miss_penalty
  in
  let blocks = code.Ir.blocks in
  let spill_cost = c.Compile.block_spill_cost in
  let rec loop bi =
    (* Fuel is also consumed per block so an empty loop (possible after DCE)
       cannot spin without ever hitting the per-instruction check. *)
    vm.fuel_left <- vm.fuel_left - 1;
    if vm.fuel_left <= 0 then raise Out_of_fuel;
    if spill_cost > 0 then vm.exec_cycles <- vm.exec_cycles + spill_cost;
    let blk = blocks.(bi) in
    let base_off = c.Compile.block_offsets.(bi) in
    let instrs = blk.Ir.instrs in
    let n = Array.length instrs in
    for k = 0 to n - 1 do
      vm.steps <- vm.steps + 1;
      vm.fuel_left <- vm.fuel_left - 1;
      if vm.fuel_left <= 0 then raise Out_of_fuel;
      touch (base_off + k);
      maybe_sample vm mid;
      let i = instrs.(k) in
      vm.exec_cycles <- vm.exec_cycles + (q * Platform.instr_cost plat i);
      match i with
      | Ir.Const (d, v) -> regs.(d) <- v
      | Ir.Move (d, s) -> regs.(d) <- regs.(s)
      | Ir.Binop (op, d, a, b) -> regs.(d) <- Ir.eval_binop op regs.(a) regs.(b)
      | Ir.Cmp (op, d, a, b) -> regs.(d) <- Ir.eval_cmp op regs.(a) regs.(b)
      | Ir.Load (d, o, off) -> regs.(d) <- heap_get vm (regs.(o) + off)
      | Ir.Store (o, off, s) -> heap_set vm (regs.(o) + off) regs.(s)
      | Ir.LoadIdx (d, o, idx) -> regs.(d) <- heap_get vm (regs.(o) + 1 + regs.(idx))
      | Ir.StoreIdx (o, idx, s) -> heap_set vm (regs.(o) + 1 + regs.(idx)) regs.(s)
      | Ir.ClassOf (d, o) -> regs.(d) <- heap_get vm regs.(o)
      | Ir.Alloc (d, kid, slots) -> regs.(d) <- heap_alloc vm kid slots
      | Ir.Call (d, callee, cargs) ->
        Profile.record_call vm.profile ~site_owner:mid ~callee;
        let argv = Array.map (fun r -> regs.(r)) cargs in
        regs.(d) <- exec_reference vm callee argv
      | Ir.CallVirt (d, slot, recv_r, cargs) ->
        let recv = regs.(recv_r) in
        let kid = heap_get vm recv in
        if kid < 0 || kid >= Array.length vm.prog.Ir.classes then
          raise (Trap "virtual dispatch on non-object");
        let k = vm.prog.Ir.classes.(kid) in
        if slot >= Array.length k.Ir.vtable then raise (Trap "vtable slot out of range");
        let callee = k.Ir.vtable.(slot) in
        Profile.record_call vm.profile ~site_owner:mid ~callee;
        let argv = Array.make (1 + Array.length cargs) recv in
        Array.iteri (fun j r -> argv.(j + 1) <- regs.(r)) cargs;
        regs.(d) <- exec_reference vm callee argv
      | Ir.Print r ->
        vm.out_hash <- mix vm.out_hash regs.(r);
        Inltune_support.Vec.push vm.outputs regs.(r)
    done;
    touch (base_off + n);
    vm.exec_cycles <- vm.exec_cycles + (q * Platform.term_cost plat blk.Ir.term);
    match blk.Ir.term with
    | Ir.Jump l -> loop l
    | Ir.Branch (cond, t, f) -> loop (if regs.(cond) <> 0 then t else f)
    | Ir.Ret r -> regs.(r)
  in
  let result = loop 0 in
  vm.call_depth <- vm.call_depth - 1;
  result

(* --- flat interpreter ----------------------------------------------------- *)

(* The dispatch loop below matches on opcode literals; pin them to the
   encoding [Lower] emits. *)
let () =
  assert (
    Lower.op_const = 0 && Lower.op_move = 1 && Lower.op_binop_base = 2
    && Lower.op_cmp_base = 12 && Lower.op_load = 18 && Lower.op_store = 19
    && Lower.op_loadidx = 20 && Lower.op_storeidx = 21 && Lower.op_classof = 22
    && Lower.op_alloc = 23 && Lower.op_print = 24 && Lower.op_last_plain = 24
    && Lower.op_call = 25 && Lower.op_callvirt = 26 && Lower.op_enter = 27
    && Lower.op_jump = 28 && Lower.op_branch = 29 && Lower.op_ret = 30
    && Lower.field_bits = 21 && Lower.field_mask = 0x1FFFFF)

module Frames = Inltune_support.Frames

(* Same observable semantics as [exec_reference], executed over the lowered
   streams: per executed instruction the order is steps, fuel, icache touch,
   sample check, cost, effect; per block ENTER is fuel then spill cost; per
   terminator icache touch then cost then transfer.  Calls record the
   profile edge before the depth check, check depth before
   [record_invocation], and fetch (possibly compiling) the callee's code
   after it — bit-for-bit the reference ordering.  Register windows live in
   the VM's frame pool: pushing a frame zeroes a fresh window and copies
   argument values caller-window to callee-window, no allocation.

   Unsafe array accesses are licensed by [Lower.lower], which validates
   every register, block target, and callee id at compile time, and by the
   pool invariant fp + nregs <= sp <= length regs. *)
let exec_flat vm mid (args : int array) =
  vm.call_depth <- vm.call_depth + 1;
  if vm.call_depth > max_call_depth then raise (Trap "simulated call stack overflow");
  Profile.record_invocation vm.profile mid;
  let c0 = get_code vm mid in
  let f0 = c0.Compile.flat in
  let fr = vm.frames in
  Frames.reset fr;
  Frames.ensure_regs fr f0.Lower.nregs;
  Array.fill fr.Frames.regs 0 f0.Lower.nregs 0;
  Array.blit args 0 fr.Frames.regs 0 (Array.length args);
  fr.Frames.sp <- f0.Lower.nregs;
  let plat = vm.plat in
  let miss_penalty = plat.Platform.miss_penalty in
  let icache_on = vm.cfg.icache_enabled in
  let icache = vm.icache in
  (* The cache geometry is immutable; hoisting it lets the per-instruction
     tag probe run inline (no call, no bounds check: [idx] is masked into
     range by construction). *)
  let itags = icache.Icache.tags
  and iline_bits = icache.Icache.line_bits
  and iindex_mask = icache.Icache.index_mask in
  let profile = vm.profile in
  let classes = vm.prog.Ir.classes in
  (* Per-step counters, hoisted out of the vm record into local refs: the
     compiler rewrites non-escaping refs into plain mutable variables, so
     the hot path keeps them in registers instead of a load + store on a
     record field per counter per step.  They are flushed back at every
     point where other code can observe the vm — sampling (which may
     compile), lazy compilation on call, traps, fuel exhaustion, and exit —
     and [sample_at] is re-read after sampling, the only one of the four
     that [maybe_sample] writes (compilation touches [compile_cycles],
     never these).  The refs must never be captured by a closure or that
     rewrite is defeated, which is why [flush] takes the values as
     arguments and the raise sites spell the flush out inline. *)
  let steps = ref vm.steps
  and fuel = ref vm.fuel_left
  and cycles = ref vm.exec_cycles
  and sample_at = ref vm.next_sample_at
  and iacc = ref icache.Icache.accesses
  and imiss = ref icache.Icache.misses in
  let flush st fu cy sa ia im =
    vm.steps <- st;
    vm.fuel_left <- fu;
    vm.exec_cycles <- cy;
    vm.next_sample_at <- sa;
    icache.Icache.accesses <- ia;
    icache.Icache.misses <- im
  in
  (* The heap pointer and length are re-read only after an allocation (the
     single thing that can move them); everything else that runs mid-loop —
     sampling, compilation, profile updates — never touches the heap. *)
  let heap = ref vm.heap
  and hlen = ref vm.heap_len in
  let code = ref f0 and pc = ref 0 and fp = ref 0 and cmid = ref mid in
  let result = ref 0 and running = ref true in
  while !running do
    (* Hoist the current frame's arrays; re-entered on every frame switch,
       so a mid-run recompile or pool growth can invalidate nothing. *)
    let f = !code in
    let opc = f.Lower.opc
    and argv = f.Lower.args
    and iaddrs = f.Lower.iaddrs
    and extra = f.Lower.extra in
    let spill = f.Lower.spill in
    let regs = fr.Frames.regs in
    let base = !fp in
    let i = ref !pc in
    let switched = ref false in
    (* One packed word [w] = opcode | cost << 8, one packed word [av] =
       x | y << 21 | z << 42 (field layout asserted against [Lower] at
       module init); decoding is register arithmetic, so an executed step
       streams three array slots (opc, args, iaddrs) where the previous
       layout streamed six parallel arrays. *)
    while not !switched do
      let s = !i in
      let w = Array.unsafe_get opc s in
      let op = w land 0xFF in
      if op <= 24 then begin
        (* Plain instruction prologue, reference order. *)
        steps := !steps + 1;
        fuel := !fuel - 1;
        if !fuel <= 0 then begin
          flush !steps !fuel !cycles !sample_at !iacc !imiss;
          raise Out_of_fuel
        end;
        if icache_on then begin
          iacc := !iacc + 1;
          let line = Array.unsafe_get iaddrs s lsr iline_bits in
          let idx = line land iindex_mask in
          if Array.unsafe_get itags idx <> line then begin
            Array.unsafe_set itags idx line;
            imiss := !imiss + 1;
            cycles := !cycles + miss_penalty
          end
        end;
        if !cycles >= !sample_at then begin
          flush !steps !fuel !cycles !sample_at !iacc !imiss;
          maybe_sample vm !cmid;
          sample_at := vm.next_sample_at
        end;
        cycles := !cycles + (w lsr 8);
        let av = Array.unsafe_get argv s in
        let x = av land 0x1FFFFF in
        (match op with
        | 0 (* const *) ->
          Array.unsafe_set regs (base + x)
            (Array.unsafe_get extra ((av lsr 21) land 0x1FFFFF))
        | 1 (* move *) ->
          Array.unsafe_set regs (base + x)
            (Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF)))
        | 2 (* add *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (a + b)
        | 3 (* sub *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (a - b)
        | 4 (* mul *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (a * b)
        | 5 (* div *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (if b = 0 then 0 else a / b)
        | 6 (* mod *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (if b = 0 then 0 else a mod b)
        | 7 (* and *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (a land b)
        | 8 (* or *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (a lor b)
        | 9 (* xor *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (a lxor b)
        | 10 (* shl *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (a lsl (b land 62))
        | 11 (* shr *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (a asr (b land 62))
        | 12 (* lt *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (if a < b then 1 else 0)
        | 13 (* le *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (if a <= b then 1 else 0)
        | 14 (* eq *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (if a = b then 1 else 0)
        | 15 (* ne *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (if a <> b then 1 else 0)
        | 16 (* gt *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (if a > b then 1 else 0)
        | 17 (* ge *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          and b = Array.unsafe_get regs (base + (av lsr 42)) in
          Array.unsafe_set regs (base + x) (if a >= b then 1 else 0)
        (* Heap ops run with [heap_get]/[heap_set] expanded inline: the range
           check against [heap_len] makes the subsequent unsafe access sound
           ([heap_len <= Array.length vm.heap] always); the hoisted [heap]
           and [hlen] are re-read after every allocation, the only thing
           that can move them. *)
        | 18 (* load *) ->
          let a =
            Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF)) + (av lsr 42)
          in
          if a < 0 || a >= !hlen then begin
            flush !steps !fuel !cycles !sample_at !iacc !imiss;
            raise (Trap "heap load out of range")
          end;
          Array.unsafe_set regs (base + x) (Array.unsafe_get !heap a)
        | 19 (* store *) ->
          let a = Array.unsafe_get regs (base + x) + ((av lsr 21) land 0x1FFFFF) in
          if a < 0 || a >= !hlen then begin
            flush !steps !fuel !cycles !sample_at !iacc !imiss;
            raise (Trap "heap store out of range")
          end;
          Array.unsafe_set !heap a (Array.unsafe_get regs (base + (av lsr 42)))
        | 20 (* loadidx *) ->
          let a =
            Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
            + 1
            + Array.unsafe_get regs (base + (av lsr 42))
          in
          if a < 0 || a >= !hlen then begin
            flush !steps !fuel !cycles !sample_at !iacc !imiss;
            raise (Trap "heap load out of range")
          end;
          Array.unsafe_set regs (base + x) (Array.unsafe_get !heap a)
        | 21 (* storeidx *) ->
          let a =
            Array.unsafe_get regs (base + x)
            + 1
            + Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF))
          in
          if a < 0 || a >= !hlen then begin
            flush !steps !fuel !cycles !sample_at !iacc !imiss;
            raise (Trap "heap store out of range")
          end;
          Array.unsafe_set !heap a (Array.unsafe_get regs (base + (av lsr 42)))
        | 22 (* classof *) ->
          let a = Array.unsafe_get regs (base + ((av lsr 21) land 0x1FFFFF)) in
          if a < 0 || a >= !hlen then begin
            flush !steps !fuel !cycles !sample_at !iacc !imiss;
            raise (Trap "heap load out of range")
          end;
          Array.unsafe_set regs (base + x) (Array.unsafe_get !heap a)
        | 23 (* alloc *) ->
          Array.unsafe_set regs (base + x)
            (heap_alloc vm ((av lsr 21) land 0x1FFFFF) (av lsr 42));
          heap := vm.heap;
          hlen := vm.heap_len
        | _ (* 24 print *) ->
          let v = Array.unsafe_get regs (base + x) in
          vm.out_hash <- mix vm.out_hash v;
          Inltune_support.Vec.push vm.outputs v);
        i := s + 1
      end
      else if op = 27 (* enter *) then begin
        fuel := !fuel - 1;
        if !fuel <= 0 then begin
          flush !steps !fuel !cycles !sample_at !iacc !imiss;
          raise Out_of_fuel
        end;
        if spill > 0 then cycles := !cycles + spill;
        i := s + 1
      end
      else if op = 28 (* jump *) then begin
        if icache_on then begin
          iacc := !iacc + 1;
          let line = Array.unsafe_get iaddrs s lsr iline_bits in
          let idx = line land iindex_mask in
          if Array.unsafe_get itags idx <> line then begin
            Array.unsafe_set itags idx line;
            imiss := !imiss + 1;
            cycles := !cycles + miss_penalty
          end
        end;
        cycles := !cycles + (w lsr 8);
        i := Array.unsafe_get argv s land 0x1FFFFF
      end
      else if op = 29 (* branch *) then begin
        if icache_on then begin
          iacc := !iacc + 1;
          let line = Array.unsafe_get iaddrs s lsr iline_bits in
          let idx = line land iindex_mask in
          if Array.unsafe_get itags idx <> line then begin
            Array.unsafe_set itags idx line;
            imiss := !imiss + 1;
            cycles := !cycles + miss_penalty
          end
        end;
        cycles := !cycles + (w lsr 8);
        let av = Array.unsafe_get argv s in
        i :=
          (if Array.unsafe_get regs (base + (av land 0x1FFFFF)) <> 0 then
             (av lsr 21) land 0x1FFFFF
           else av lsr 42)
      end
      else if op = 30 (* ret *) then begin
        if icache_on then begin
          iacc := !iacc + 1;
          let line = Array.unsafe_get iaddrs s lsr iline_bits in
          let idx = line land iindex_mask in
          if Array.unsafe_get itags idx <> line then begin
            Array.unsafe_set itags idx line;
            imiss := !imiss + 1;
            cycles := !cycles + miss_penalty
          end
        end;
        cycles := !cycles + (w lsr 8);
        let rv = Array.unsafe_get regs (base + (Array.unsafe_get argv s land 0x1FFFFF)) in
        vm.call_depth <- vm.call_depth - 1;
        if fr.Frames.depth = 0 then begin
          running := false;
          result := rv
        end
        else begin
          let d = fr.Frames.depth - 1 in
          fr.Frames.depth <- d;
          fr.Frames.sp <- base;
          let pbase = fr.Frames.fps.(d) in
          code := fr.Frames.codes.(d);
          fr.Frames.codes.(d) <- Lower.dummy;
          fp := pbase;
          cmid := fr.Frames.mids.(d);
          pc := fr.Frames.pcs.(d);
          Array.unsafe_set regs (pbase + fr.Frames.dests.(d)) rv
        end;
        switched := true
      end
      else begin
        (* call / callvirt: plain prologue, then the frame switch. *)
        steps := !steps + 1;
        fuel := !fuel - 1;
        if !fuel <= 0 then begin
          flush !steps !fuel !cycles !sample_at !iacc !imiss;
          raise Out_of_fuel
        end;
        if icache_on then begin
          iacc := !iacc + 1;
          let line = Array.unsafe_get iaddrs s lsr iline_bits in
          let idx = line land iindex_mask in
          if Array.unsafe_get itags idx <> line then begin
            Array.unsafe_set itags idx line;
            imiss := !imiss + 1;
            cycles := !cycles + miss_penalty
          end
        end;
        if !cycles >= !sample_at then begin
          flush !steps !fuel !cycles !sample_at !iacc !imiss;
          maybe_sample vm !cmid;
          sample_at := vm.next_sample_at
        end;
        cycles := !cycles + (w lsr 8);
        let av = Array.unsafe_get argv s in
        let x = av land 0x1FFFFF in
        let o = av lsr 42 in
        let callee =
          if op = 25 (* call *) then begin
            let callee = (av lsr 21) land 0x1FFFFF in
            Profile.record_site profile (Array.unsafe_get extra o);
            callee
          end
          else begin
            (* callvirt: resolve through the vtable before the edge is
               recorded, as the reference does. *)
            let recv = Array.unsafe_get regs (base + Array.unsafe_get extra o) in
            if recv < 0 || recv >= !hlen then begin
              flush !steps !fuel !cycles !sample_at !iacc !imiss;
              raise (Trap "heap load out of range")
            end;
            let kid = Array.unsafe_get !heap recv in
            if kid < 0 || kid >= Array.length classes then begin
              flush !steps !fuel !cycles !sample_at !iacc !imiss;
              raise (Trap "virtual dispatch on non-object")
            end;
            let k = Array.unsafe_get classes kid in
            let slot = (av lsr 21) land 0x1FFFFF in
            if slot >= Array.length k.Ir.vtable then begin
              flush !steps !fuel !cycles !sample_at !iacc !imiss;
              raise (Trap "vtable slot out of range")
            end;
            let callee = k.Ir.vtable.(slot) in
            Profile.record_call_dynamic profile ~site_owner:!cmid ~callee;
            callee
          end
        in
        vm.call_depth <- vm.call_depth + 1;
        if vm.call_depth > max_call_depth then begin
          flush !steps !fuel !cycles !sample_at !iacc !imiss;
          raise (Trap "simulated call stack overflow")
        end;
        Profile.record_invocation profile callee;
        (* [get_code] may lazily compile; keep the vm record current across
           it even though compilation never reads these counters today. *)
        flush !steps !fuel !cycles !sample_at !iacc !imiss;
        let cf = (get_code vm callee).Compile.flat in
        let d = fr.Frames.depth in
        if d >= Array.length fr.Frames.fps then Frames.grow_meta fr;
        fr.Frames.codes.(d) <- f;
        fr.Frames.fps.(d) <- base;
        fr.Frames.pcs.(d) <- s + 1;
        fr.Frames.dests.(d) <- x;
        fr.Frames.mids.(d) <- !cmid;
        fr.Frames.depth <- d + 1;
        let nfp = fr.Frames.sp in
        let need = nfp + cf.Lower.nregs in
        if need <= Array.length fr.Frames.regs then
          vm.frames_reused <- vm.frames_reused + 1
        else Frames.grow_regs fr need;
        let regs' = fr.Frames.regs in
        Array.fill regs' nfp cf.Lower.nregs 0;
        if op = 25 then begin
          let nargs = Array.unsafe_get extra (o + 1) in
          for j = 0 to nargs - 1 do
            Array.unsafe_set regs' (nfp + j)
              (Array.unsafe_get regs' (base + Array.unsafe_get extra (o + 2 + j)))
          done
        end
        else begin
          (* receiver in slot 0, then the declared arguments *)
          Array.unsafe_set regs' nfp
            (Array.unsafe_get regs' (base + Array.unsafe_get extra o));
          let nargs = Array.unsafe_get extra (o + 1) in
          for j = 0 to nargs - 1 do
            Array.unsafe_set regs' (nfp + 1 + j)
              (Array.unsafe_get regs' (base + Array.unsafe_get extra (o + 2 + j)))
          done
        end;
        fr.Frames.sp <- need;
        code := cf;
        fp := nfp;
        cmid := callee;
        pc := 0;
        switched := true
      end
    done
  done;
  flush !steps !fuel !cycles !sample_at !iacc !imiss;
  !result

let exec vm mid args =
  if !reference_mode then exec_reference vm mid args else exec_flat vm mid args

(* --- iterations ---------------------------------------------------------- *)

type iteration = {
  ret : int;
  it_exec_cycles : int;
  it_compile_cycles : int;
  it_steps : int;
  it_out_hash : int;
  it_outputs : int array;
}

(* One run of [main].  Compiled-code state, profile, and the I-cache persist
   across iterations (the warmed VM); the heap and output log are fresh per
   iteration so results are comparable. *)
let run_iteration vm =
  vm.heap_len <- 0;
  vm.out_hash <- 0;
  Inltune_support.Vec.clear vm.outputs;
  vm.fuel_left <- vm.cfg.fuel;
  let exec0 = vm.exec_cycles and comp0 = vm.compile_cycles and steps0 = vm.steps in
  let ret = exec vm vm.prog.Ir.main [||] in
  (* Flush the frame-pool reuse tally once per iteration; looked up at use
     time so Metric.reset_all cannot orphan the counter. *)
  if vm.frames_reused > 0 then begin
    Inltune_obs.Metric.add (Inltune_obs.Metric.counter "vm.frames_reused") vm.frames_reused;
    vm.frames_reused <- 0
  end;
  if Trace.enabled () then
    Trace.emit "vm.iteration"
      ~fields:
        [
          ("prog", Event.Str vm.prog.Ir.pname);
          ("scenario", Event.Str (scenario_name vm.cfg.scenario));
          ("exec_cycles", Event.Int (vm.exec_cycles - exec0));
          ("compile_cycles", Event.Int (vm.compile_cycles - comp0));
          ("steps", Event.Int (vm.steps - steps0));
        ];
  {
    ret;
    it_exec_cycles = vm.exec_cycles - exec0;
    it_compile_cycles = vm.compile_cycles - comp0;
    it_steps = vm.steps - steps0;
    it_out_hash = vm.out_hash;
    it_outputs = Inltune_support.Vec.to_array vm.outputs;
  }

let opt_compiles vm = vm.opt_compiles
let o1_compiles vm = vm.o1_compiles
let baseline_compiles vm = vm.baseline_compiles
let code_bytes vm = Codespace.allocated vm.codespace
let icache_misses vm = Icache.misses vm.icache
let icache_accesses vm = Icache.accesses vm.icache
let profile vm = vm.profile
let compiled_method vm mid = vm.compiled.(mid)
